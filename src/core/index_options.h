#ifndef TASTI_CORE_INDEX_OPTIONS_H_
#define TASTI_CORE_INDEX_OPTIONS_H_

/// \file index_options.h
/// Construction parameters for a TASTI index (Algorithm 1), including the
/// ablation switches exercised by the factor analysis / lesion study
/// (paper Figures 9 and 10).

#include <cstddef>
#include <cstdint>

namespace tasti::core {

/// How cluster representatives are chosen (paper Section 3.2 uses FPF with
/// a small random mixture; random and k-means are ablation baselines —
/// k-means optimizes average quantization error and misses the rare tail).
enum class RepSelectionPolicy {
  kFpfMixed,  ///< FPF plus `random_rep_fraction` uniform picks (default)
  kRandom,    ///< uniform random (the Figures 9/10 ablation)
  kKMeans,    ///< k-means centroids snapped to dataset members
};

/// All knobs of Make TASTI index(X, N1, N2, k).
struct IndexOptions {
  /// N1: target labeler annotations spent on triplet-training data.
  /// Ignored when use_triplet_training is false.
  size_t num_training_records = 3000;

  /// N2: number of cluster representatives ("buckets" in Section 6.8).
  size_t num_representatives = 7000;

  /// min-k: distances retained per record; k=5 is the paper's default
  /// propagation width (Section 5.3).
  size_t k = 5;

  /// Embedding network shape.
  size_t embedding_dim = 64;
  size_t hidden_dim = 128;

  /// Triplet training schedule.
  size_t epochs = 25;
  size_t batch_size = 64;
  float margin = 0.3f;
  float learning_rate = 1e-3f;

  /// Fraction of representatives chosen uniformly at random and mixed into
  /// the FPF picks (Section 3.2: helps average-case queries).
  double random_rep_fraction = 0.1;

  // --- Ablation switches (Figures 9/10) ---

  /// Train an embedding with the triplet loss (TASTI-T). When false, the
  /// pretrained embedding is used directly (TASTI-PT).
  bool use_triplet_training = true;

  /// Mine triplet-training records with FPF over pretrained embeddings.
  /// When false, training records are sampled uniformly.
  bool use_fpf_mining = true;

  /// Representative selection policy (see RepSelectionPolicy).
  RepSelectionPolicy rep_selection = RepSelectionPolicy::kFpfMixed;

  // --- Scalability knobs ---

  /// Compute min-k distances through an IVF approximate-nearest-neighbor
  /// index instead of brute force. Exact at small scale is fine; IVF cuts
  /// the records x reps distance cost by ~(partitions / probes) with a
  /// small recall loss (see cluster/ivf.h).
  bool use_ivf = false;
  /// IVF partitions probed per record when use_ivf is set.
  size_t ivf_probes = 8;

  uint64_t seed = 42;
};

}  // namespace tasti::core

#endif  // TASTI_CORE_INDEX_OPTIONS_H_
