#include "core/serialize.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "embed/pretrained.h"
#include "embed/triplet_trainer.h"
#include "labeler/label_codec.h"
#include "nn/serialize.h"
#include "util/checksum.h"


namespace tasti::core {

namespace {

constexpr uint32_t kMagic = 0x54535449;  // "TSTI"
// v3: per-representative validity flags (degraded builds) + integrity
// footer over the whole buffer.
constexpr uint32_t kVersion = 3;

// --- primitive writers/readers over a string buffer ---

template <typename T>
void Put(std::string* out, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>, "Put requires POD");
  out->append(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool Get(const std::string& in, size_t* at, T* value) {
  static_assert(std::is_trivially_copyable_v<T>, "Get requires POD");
  if (*at + sizeof(T) > in.size()) return false;
  std::memcpy(value, in.data() + *at, sizeof(T));
  *at += sizeof(T);
  return true;
}

void PutMatrix(std::string* out, const nn::Matrix& m) {
  Put<uint64_t>(out, m.rows());
  Put<uint64_t>(out, m.cols());
  out->append(reinterpret_cast<const char*>(m.data()), m.size() * sizeof(float));
}

bool GetMatrix(const std::string& in, size_t* at, nn::Matrix* m) {
  uint64_t rows = 0, cols = 0;
  if (!Get(in, at, &rows) || !Get(in, at, &cols)) return false;
  const size_t bytes = static_cast<size_t>(rows * cols) * sizeof(float);
  if (*at + bytes > in.size()) return false;
  *m = nn::Matrix(rows, cols);
  std::memcpy(m->data(), in.data() + *at, bytes);
  *at += bytes;
  return true;
}

template <typename T>
void PutVector(std::string* out, const std::vector<T>& v) {
  static_assert(std::is_trivially_copyable_v<T>, "PutVector requires POD");
  Put<uint64_t>(out, v.size());
  out->append(reinterpret_cast<const char*>(v.data()), v.size() * sizeof(T));
}

template <typename T>
bool GetVector(const std::string& in, size_t* at, std::vector<T>* v) {
  uint64_t n = 0;
  if (!Get(in, at, &n)) return false;
  const size_t bytes = static_cast<size_t>(n) * sizeof(T);
  if (*at + bytes > in.size()) return false;
  v->resize(n);
  std::memcpy(v->data(), in.data() + *at, bytes);
  *at += bytes;
  return true;
}

}  // namespace

Result<std::string> IndexSerializer::SerializeToString(const TastiIndex& index) {
  std::string out;
  Put<uint32_t>(&out, kMagic);
  Put<uint32_t>(&out, kVersion);

  // Options (only the fields that affect interpretation of the payload).
  Put<uint64_t>(&out, index.options().k);
  Put<uint64_t>(&out, index.options().embedding_dim);

  PutMatrix(&out, index.embeddings_);
  PutMatrix(&out, index.rep_embeddings_);

  // Representative record ids as u64.
  std::vector<uint64_t> rep_ids(index.rep_record_ids_.begin(),
                                index.rep_record_ids_.end());
  PutVector(&out, rep_ids);

  // Labels use the shared codec (labeler/label_codec.h) — the same
  // encoding the write-ahead log stores per crack.
  Put<uint64_t>(&out, index.rep_labels_.size());
  for (const data::LabelerOutput& label : index.rep_labels_) {
    labeler::EncodeLabel(&out, label);
  }
  // v3: validity flags (0 marks a representative whose annotation failed).
  PutVector(&out, index.rep_label_valid_);

  Put<uint64_t>(&out, index.topk_.k);
  Put<uint64_t>(&out, index.topk_.num_records);
  PutVector(&out, index.topk_.rep_ids);
  PutVector(&out, index.topk_.distances);

  // Embedder block (v2): lets a loaded index ingest new records.
  if (const auto* pretrained = dynamic_cast<const embed::PretrainedEmbedder*>(
          index.embedder_.get())) {
    Put<uint8_t>(&out, 1);
    Put<uint64_t>(&out, pretrained->in_dim());
    Put<uint64_t>(&out, pretrained->embedding_dim());
    Put<uint64_t>(&out, pretrained->seed());
  } else if (const auto* trained = dynamic_cast<const embed::TrainedEmbedder*>(
                 index.embedder_.get())) {
    Put<uint8_t>(&out, 2);
    Put<uint64_t>(&out, trained->embedding_dim());
    Result<std::string> blob = nn::SerializeMlp(trained->model());
    TASTI_RETURN_NOT_OK(blob.status());
    Put<uint64_t>(&out, blob->size());
    out.append(*blob);
  } else {
    Put<uint8_t>(&out, 0);  // no embedder (or an unknown custom type)
  }
  AppendChecksumFooter(&out);
  return out;
}

Result<TastiIndex> IndexSerializer::DeserializeFromString(
    const std::string& raw) {
  Result<size_t> payload_size = VerifyChecksumFooter(raw);
  TASTI_RETURN_NOT_OK(payload_size.status());
  const std::string buffer = raw.substr(0, *payload_size);
  size_t at = 0;
  uint32_t magic = 0, version = 0;
  if (!Get(buffer, &at, &magic) || magic != kMagic) {
    return Status::InvalidArgument("bad magic: not a TASTI index");
  }
  if (!Get(buffer, &at, &version) || version != kVersion) {
    return Status::InvalidArgument("unsupported index version");
  }

  TastiIndex index;
  uint64_t k = 0, embedding_dim = 0;
  if (!Get(buffer, &at, &k) || !Get(buffer, &at, &embedding_dim)) {
    return Status::InvalidArgument("truncated header");
  }
  index.options_.k = k;
  index.options_.embedding_dim = embedding_dim;

  if (!GetMatrix(buffer, &at, &index.embeddings_) ||
      !GetMatrix(buffer, &at, &index.rep_embeddings_)) {
    return Status::InvalidArgument("truncated embedding matrices");
  }

  std::vector<uint64_t> rep_ids;
  if (!GetVector(buffer, &at, &rep_ids)) {
    return Status::InvalidArgument("truncated representative ids");
  }
  index.rep_record_ids_.assign(rep_ids.begin(), rep_ids.end());

  uint64_t num_labels = 0;
  if (!Get(buffer, &at, &num_labels)) {
    return Status::InvalidArgument("truncated label count");
  }
  if (num_labels != rep_ids.size()) {
    return Status::InvalidArgument("label/representative count mismatch");
  }
  index.rep_labels_.resize(num_labels);
  for (uint64_t i = 0; i < num_labels; ++i) {
    if (!labeler::DecodeLabel(buffer, &at, &index.rep_labels_[i])) {
      return Status::InvalidArgument("truncated labels");
    }
  }

  if (!GetVector(buffer, &at, &index.rep_label_valid_)) {
    return Status::InvalidArgument("truncated validity flags");
  }
  if (index.rep_label_valid_.size() != num_labels) {
    return Status::InvalidArgument("validity/label count mismatch");
  }
  index.num_failed_reps_ = 0;
  for (uint8_t valid : index.rep_label_valid_) {
    if (valid == 0) ++index.num_failed_reps_;
  }

  uint64_t topk_k = 0, topk_n = 0;
  if (!Get(buffer, &at, &topk_k) || !Get(buffer, &at, &topk_n) ||
      !GetVector(buffer, &at, &index.topk_.rep_ids) ||
      !GetVector(buffer, &at, &index.topk_.distances)) {
    return Status::InvalidArgument("truncated top-k block");
  }
  index.topk_.k = topk_k;
  index.topk_.num_records = topk_n;
  if (index.topk_.rep_ids.size() != topk_k * topk_n ||
      index.topk_.distances.size() != topk_k * topk_n) {
    return Status::InvalidArgument("top-k block size mismatch");
  }

  index.is_rep_.assign(index.embeddings_.rows(), 0);
  for (size_t record : index.rep_record_ids_) {
    if (record >= index.is_rep_.size()) {
      return Status::InvalidArgument("representative id out of range");
    }
    index.is_rep_[record] = 1;
  }

  uint8_t embedder_tag = 0;
  if (!Get(buffer, &at, &embedder_tag)) {
    return Status::InvalidArgument("truncated embedder block");
  }
  switch (embedder_tag) {
    case 0:
      break;
    case 1: {
      uint64_t in_dim = 0, out_dim = 0, seed = 0;
      if (!Get(buffer, &at, &in_dim) || !Get(buffer, &at, &out_dim) ||
          !Get(buffer, &at, &seed)) {
        return Status::InvalidArgument("truncated pretrained embedder block");
      }
      index.embedder_ =
          std::make_unique<embed::PretrainedEmbedder>(in_dim, out_dim, seed);
      break;
    }
    case 2: {
      uint64_t dim = 0, blob_size = 0;
      if (!Get(buffer, &at, &dim) || !Get(buffer, &at, &blob_size) ||
          at + blob_size > buffer.size()) {
        return Status::InvalidArgument("truncated trained embedder block");
      }
      Result<nn::Mlp> model =
          nn::DeserializeMlp(buffer.substr(at, blob_size));
      if (!model.ok()) return model.status();
      at += blob_size;
      index.embedder_ = std::make_unique<embed::TrainedEmbedder>(
          std::move(*model), dim);
      break;
    }
    default:
      return Status::InvalidArgument("unknown embedder tag");
  }
  return index;
}

Status IndexSerializer::Save(const TastiIndex& index, const std::string& path) {
  Result<std::string> buffer = SerializeToString(index);
  TASTI_RETURN_NOT_OK(buffer.status());
  // Atomic publish: tmp file + fsync + rename. A crash mid-Save leaves at
  // most a stray tmp; `path` always holds a complete index (the old one
  // until the rename commits, the new one after).
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IOError("cannot open for writing: " + tmp + ": " +
                           std::strerror(errno));
  }
  size_t written = 0;
  while (written < buffer->size()) {
    const ssize_t n =
        ::write(fd, buffer->data() + written, buffer->size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      const std::string detail = std::strerror(errno);
      ::close(fd);
      ::remove(tmp.c_str());
      return Status::IOError("write failed: " + tmp + ": " + detail);
    }
    written += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    const std::string detail = std::strerror(errno);
    ::close(fd);
    ::remove(tmp.c_str());
    return Status::IOError("fsync failed: " + tmp + ": " + detail);
  }
  ::close(fd);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const std::string detail = std::strerror(errno);
    ::remove(tmp.c_str());
    return Status::IOError("rename failed: " + tmp + " -> " + path + ": " +
                           detail);
  }
  return Status::OK();
}

Result<TastiIndex> IndexSerializer::Load(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) return Status::IOError("cannot open for reading: " + path);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return DeserializeFromString(buffer.str());
}

}  // namespace tasti::core
