#ifndef TASTI_CORE_DRIFT_H_
#define TASTI_CORE_DRIFT_H_

/// \file drift.h
/// Data-drift detection for streaming ingestion.
///
/// When new records are appended (TastiIndex::AppendRecords) their
/// nearest-representative distances tell us whether they resemble the
/// indexed distribution: a camera whose scene changed (construction,
/// re-aiming, seasons) produces records far from every representative,
/// and the index's propagated proxies silently degrade. DetectDrift
/// compares the nearest-distance distribution of a recent record range
/// against the baseline and flags when it shifts, signalling that the
/// operator should crack in fresh labels (cheap) or retrain (rare).

#include <cstddef>
#include <string>

#include "core/index.h"

namespace tasti::core {

/// Drift comparison between a baseline and a recent record range.
struct DriftReport {
  /// Mean nearest-representative distance of the two ranges.
  double baseline_mean = 0.0;
  double recent_mean = 0.0;
  /// 95th-percentile nearest distances.
  double baseline_p95 = 0.0;
  double recent_p95 = 0.0;
  /// recent_mean / baseline_mean (1.0 = no shift).
  double mean_ratio = 1.0;
  /// True if the ratio exceeded the configured threshold.
  bool drifted = false;

  std::string ToString() const;
};

/// Compares records [recent_begin, num_records) against [0, recent_begin).
/// `ratio_threshold` is the mean-distance inflation that counts as drift.
DriftReport DetectDrift(const TastiIndex& index, size_t recent_begin,
                        double ratio_threshold = 1.3);

/// Same computation from a bare top-k table. Lets the serving monitor run
/// drift checks against a published IndexSnapshot (which carries the
/// epoch's TopKDistances) without touching the live index or its locks.
DriftReport DetectDrift(const cluster::TopKDistances& topk,
                        size_t num_records, size_t recent_begin,
                        double ratio_threshold = 1.3);

}  // namespace tasti::core

#endif  // TASTI_CORE_DRIFT_H_
