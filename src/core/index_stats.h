#ifndef TASTI_CORE_INDEX_STATS_H_
#define TASTI_CORE_INDEX_STATS_H_

/// \file index_stats.h
/// Diagnostics over a built index: coverage radii (the quantity the
/// paper's analysis bounds), cluster-size balance, and per-bucket
/// annotation coverage. Useful for tuning N2 and for verifying that FPF
/// reached the rare tail.

#include <cstddef>
#include <string>
#include <vector>

#include "core/index.h"

namespace tasti::core {

/// Summary statistics of an index's geometry.
struct IndexStats {
  /// Distance from each record to its nearest representative: the
  /// "density of clustering" the theory ties query accuracy to.
  double mean_nearest_distance = 0.0;
  double max_nearest_distance = 0.0;   ///< the k-center coverage radius
  double p99_nearest_distance = 0.0;

  /// Cluster balance (records assigned to each nearest representative).
  size_t largest_cluster = 0;
  size_t empty_clusters = 0;  ///< representatives that are nobody's nearest
  double mean_cluster_size = 0.0;

  size_t num_records = 0;
  size_t num_representatives = 0;

  /// Degraded coverage: representatives whose oracle annotation failed.
  /// They stay in the set (propagation skips them) until repaired.
  size_t num_failed_representatives = 0;
  std::vector<size_t> failed_representatives;  ///< their record ids

  /// Renders a short human-readable report.
  std::string ToString() const;
};

/// Computes stats from the index's stored min-k distances (no embedding
/// passes required).
IndexStats ComputeIndexStats(const TastiIndex& index);

}  // namespace tasti::core

#endif  // TASTI_CORE_INDEX_STATS_H_
