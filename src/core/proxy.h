#ifndef TASTI_CORE_PROXY_H_
#define TASTI_CORE_PROXY_H_

/// \file proxy.h
/// One-call generation of query-specific proxy scores from a TASTI index
/// (paper Figure 1c): evaluate the scorer exactly on the representatives,
/// then propagate.

#include <vector>

#include "core/index.h"
#include "core/propagation.h"
#include "core/scorer.h"

namespace tasti::core {

// PropagationMode lives in propagation.h (included above) next to the
// propagation passes it selects between.

/// Wall-time split of one ComputeProxyScores call, for per-query cost
/// attribution (obs::QueryLog).
struct ProxyTimings {
  double rep_score_seconds = 0.0;    ///< scorer over the representatives
  double propagation_seconds = 0.0;  ///< propagation to all records
};

/// Generates proxy scores for every record. When `timings` is non-null it
/// receives the wall time of the two phases. The IndexView overload is the
/// implementation; it lets query serving compute proxies from immutable
/// snapshots without touching the live index.
std::vector<double> ComputeProxyScores(const IndexView& view,
                                       const Scorer& scorer,
                                       PropagationMode mode = PropagationMode::kNumeric,
                                       const PropagationOptions& options = {},
                                       ProxyTimings* timings = nullptr);
std::vector<double> ComputeProxyScores(const TastiIndex& index,
                                       const Scorer& scorer,
                                       PropagationMode mode = PropagationMode::kNumeric,
                                       const PropagationOptions& options = {},
                                       ProxyTimings* timings = nullptr);

/// Full proxy computation into a resumable PropagationState: evaluates the
/// scorer on the representatives and runs the full propagation pass.
/// state->scores is bit-identical to ComputeProxyScores with the same
/// arguments; the state can then seed UpdateProxyState on a later epoch.
void ComputeProxyState(const IndexView& view, const Scorer& scorer,
                       PropagationMode mode, const PropagationOptions& options,
                       PropagationState* state, ProxyTimings* timings = nullptr);

/// Incrementally advances a parent-epoch PropagationState to `view`:
/// re-scores appended and `dirty_reps` representatives, then recomputes
/// the `dirty_rows` plus appended records. Bit-identical to
/// ComputeProxyState over `view` from scratch. Returns the number of
/// record rows recomputed.
size_t UpdateProxyState(const IndexView& view, const Scorer& scorer,
                        const std::vector<uint32_t>& dirty_rows,
                        const std::vector<uint32_t>& dirty_reps,
                        PropagationState* state, ProxyTimings* timings = nullptr);

/// Exact scores for every record via a ground-truth labeler — used by the
/// evaluation harness to measure proxy quality, never by query processing.
std::vector<double> ExactScores(const data::Dataset& dataset,
                                const Scorer& scorer);

}  // namespace tasti::core

#endif  // TASTI_CORE_PROXY_H_
