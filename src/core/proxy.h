#ifndef TASTI_CORE_PROXY_H_
#define TASTI_CORE_PROXY_H_

/// \file proxy.h
/// One-call generation of query-specific proxy scores from a TASTI index
/// (paper Figure 1c): evaluate the scorer exactly on the representatives,
/// then propagate.

#include <vector>

#include "core/index.h"
#include "core/propagation.h"
#include "core/scorer.h"

namespace tasti::core {

/// How representative scores are propagated to unannotated records.
enum class PropagationMode {
  /// Inverse-distance-weighted mean over the k nearest representatives.
  /// This is the paper's default for numeric scores and its smoothed
  /// probability estimate for 0/1 predicates (Sections 4.1, 4.3).
  kNumeric,
  /// Distance-weighted majority vote (hard categorical outputs).
  kCategorical,
  /// k = 1 with distance tie-breaking (limit-query ranking, Section 6.3).
  kLimit,
};

/// Wall-time split of one ComputeProxyScores call, for per-query cost
/// attribution (obs::QueryLog).
struct ProxyTimings {
  double rep_score_seconds = 0.0;    ///< scorer over the representatives
  double propagation_seconds = 0.0;  ///< propagation to all records
};

/// Generates proxy scores for every record. When `timings` is non-null it
/// receives the wall time of the two phases. The IndexView overload is the
/// implementation; it lets query serving compute proxies from immutable
/// snapshots without touching the live index.
std::vector<double> ComputeProxyScores(const IndexView& view,
                                       const Scorer& scorer,
                                       PropagationMode mode = PropagationMode::kNumeric,
                                       const PropagationOptions& options = {},
                                       ProxyTimings* timings = nullptr);
std::vector<double> ComputeProxyScores(const TastiIndex& index,
                                       const Scorer& scorer,
                                       PropagationMode mode = PropagationMode::kNumeric,
                                       const PropagationOptions& options = {},
                                       ProxyTimings* timings = nullptr);

/// Exact scores for every record via a ground-truth labeler — used by the
/// evaluation harness to measure proxy quality, never by query processing.
std::vector<double> ExactScores(const data::Dataset& dataset,
                                const Scorer& scorer);

}  // namespace tasti::core

#endif  // TASTI_CORE_PROXY_H_
