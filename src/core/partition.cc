#include "core/partition.h"

#include <algorithm>

#include "util/status.h"

namespace tasti::core {

Partitioner::Partitioner(size_t num_records, size_t num_shards) {
  TASTI_CHECK(num_shards >= 1, "Partitioner requires at least one shard");
  bounds_.reserve(num_shards + 1);
  const size_t base = num_records / num_shards;
  const size_t remainder = num_records % num_shards;
  size_t offset = 0;
  bounds_.push_back(offset);
  for (size_t s = 0; s < num_shards; ++s) {
    offset += base + (s < remainder ? 1 : 0);
    bounds_.push_back(offset);
  }
}

size_t Partitioner::ShardOf(size_t record_id) const {
  TASTI_CHECK(num_shards() > 0, "ShardOf on an empty Partitioner");
  if (record_id >= bounds_.back()) return num_shards() - 1;
  // First boundary strictly above record_id; its predecessor's shard owns
  // the id. Empty shards (equal adjacent bounds) are skipped naturally.
  const auto it =
      std::upper_bound(bounds_.begin(), bounds_.end(), record_id);
  return static_cast<size_t>(it - bounds_.begin()) - 1;
}

std::vector<size_t> Partitioner::ShardOffsets() const {
  std::vector<size_t> offsets(num_shards());
  for (size_t s = 0; s < offsets.size(); ++s) offsets[s] = bounds_[s];
  return offsets;
}

std::vector<size_t> Partitioner::ShardSizes() const {
  std::vector<size_t> sizes(num_shards());
  for (size_t s = 0; s < sizes.size(); ++s) {
    sizes[s] = bounds_[s + 1] - bounds_[s];
  }
  return sizes;
}

void Partitioner::ExtendLastShard(size_t additional_records) {
  TASTI_CHECK(num_shards() > 0, "ExtendLastShard on an empty Partitioner");
  bounds_.back() += additional_records;
}

}  // namespace tasti::core
