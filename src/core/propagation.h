#ifndef TASTI_CORE_PROPAGATION_H_
#define TASTI_CORE_PROPAGATION_H_

/// \file propagation.h
/// Score propagation (paper Section 4.3): exact scores on cluster
/// representatives are propagated to unannotated records via the stored
/// min-k distances — inverse-distance-weighted mean for numeric scores,
/// distance-weighted majority vote for categorical scores, and the
/// k=1-with-distance-tie-breaking variant used for limit queries
/// (Section 6.3).
///
/// Every function takes a core::IndexView, so propagation runs identically
/// against the mutable TastiIndex and against immutable serving snapshots
/// (serve::IndexSnapshot); the TastiIndex overloads are thin delegators.

#include <cstddef>
#include <vector>

#include "core/index.h"
#include "core/scorer.h"

namespace tasti::core {

/// Propagation parameters.
struct PropagationOptions {
  /// Neighbors used; clamped to the index's stored k. 0 means "use all
  /// stored neighbors".
  size_t k = 0;
  /// Distance floor: weights are 1 / (distance + epsilon)^power, so a
  /// record that is itself a representative is dominated by its own exact
  /// score.
  float epsilon = 1e-6f;
  /// Exponent of the inverse-distance weight. Higher powers sharpen the
  /// estimate toward the nearest representative, improving tail accuracy
  /// on rare records at a slight cost in smoothing.
  float weight_power = 2.0f;
};

/// Evaluates the scorer on every representative (exact scores).
std::vector<double> RepresentativeScores(const IndexView& view,
                                         const Scorer& scorer);
inline std::vector<double> RepresentativeScores(const TastiIndex& index,
                                                const Scorer& scorer) {
  return RepresentativeScores(index.View(), scorer);
}

/// Inverse-distance-weighted mean propagation for numeric scores.
/// `rep_scores` must align with view.rep_labels.
std::vector<double> PropagateNumeric(const IndexView& view,
                                     const std::vector<double>& rep_scores,
                                     const PropagationOptions& options = {});
inline std::vector<double> PropagateNumeric(
    const TastiIndex& index, const std::vector<double>& rep_scores,
    const PropagationOptions& options = {}) {
  return PropagateNumeric(index.View(), rep_scores, options);
}

/// Distance-weighted majority vote for categorical scores: each record
/// gets the score value with the largest total weight among its k nearest
/// representatives.
std::vector<double> PropagateCategorical(const IndexView& view,
                                         const std::vector<double>& rep_scores,
                                         const PropagationOptions& options = {});
inline std::vector<double> PropagateCategorical(
    const TastiIndex& index, const std::vector<double>& rep_scores,
    const PropagationOptions& options = {}) {
  return PropagateCategorical(index.View(), rep_scores, options);
}

/// Limit-query propagation: records inherit the best score among their
/// stored min-k representatives (rare events often sit at cluster
/// boundaries next to a positive representative), plus a strictly-less-
/// than-unit bonus decreasing in distance to that representative, so
/// sorting descending ranks by score first and proximity second. Scores
/// must be integer-spaced for the tie-break to be order-preserving.
/// `use_best_of_k = false` restricts to the single nearest representative
/// (the paper's literal "k = 1 with ties broken by distance").
std::vector<double> PropagateLimit(const IndexView& view,
                                   const std::vector<double>& rep_scores,
                                   bool use_best_of_k = true);
inline std::vector<double> PropagateLimit(const TastiIndex& index,
                                          const std::vector<double>& rep_scores,
                                          bool use_best_of_k = true) {
  return PropagateLimit(index.View(), rep_scores, use_best_of_k);
}

}  // namespace tasti::core

#endif  // TASTI_CORE_PROPAGATION_H_
