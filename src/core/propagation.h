#ifndef TASTI_CORE_PROPAGATION_H_
#define TASTI_CORE_PROPAGATION_H_

/// \file propagation.h
/// Score propagation (paper Section 4.3): exact scores on cluster
/// representatives are propagated to unannotated records via the stored
/// min-k distances — inverse-distance-weighted mean for numeric scores,
/// distance-weighted majority vote for categorical scores, and the
/// k=1-with-distance-tie-breaking variant used for limit queries
/// (Section 6.3).
///
/// Every function takes a core::IndexView, so propagation runs identically
/// against the mutable TastiIndex and against immutable serving snapshots
/// (serve::IndexSnapshot); the TastiIndex overloads are thin delegators.
///
/// Incremental propagation: a record's propagated score depends only on
/// its own top-k row and the exact scores of the representatives in it.
/// When cracking changes the top-k lists of a known set of "dirty" rows
/// (cluster::UpdateTopKWithNewRep reports them), PropagateIncremental
/// recomputes only those rows — running the identical per-row arithmetic
/// the full pass would, so results are bit-identical to recomputing from
/// scratch. PropagationState carries everything needed to resume.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/index.h"
#include "core/scorer.h"

namespace tasti::core {

/// How representative scores are propagated to unannotated records.
enum class PropagationMode {
  /// Inverse-distance-weighted mean over the k nearest representatives.
  /// This is the paper's default for numeric scores and its smoothed
  /// probability estimate for 0/1 predicates (Sections 4.1, 4.3).
  kNumeric,
  /// Distance-weighted majority vote (hard categorical outputs).
  kCategorical,
  /// k = 1 with distance tie-breaking (limit-query ranking, Section 6.3).
  kLimit,
};

/// Propagation parameters.
struct PropagationOptions {
  /// Neighbors used; clamped to the index's stored k. 0 means "use all
  /// stored neighbors".
  size_t k = 0;
  /// Distance floor: weights are 1 / (distance + epsilon)^power, so a
  /// record that is itself a representative is dominated by its own exact
  /// score.
  float epsilon = 1e-6f;
  /// Exponent of the inverse-distance weight. Higher powers sharpen the
  /// estimate toward the nearest representative, improving tail accuracy
  /// on rare records at a slight cost in smoothing.
  float weight_power = 2.0f;
};

/// Evaluates the scorer on every representative (exact scores).
std::vector<double> RepresentativeScores(const IndexView& view,
                                         const Scorer& scorer);
inline std::vector<double> RepresentativeScores(const TastiIndex& index,
                                                const Scorer& scorer) {
  return RepresentativeScores(index.View(), scorer);
}

/// Inverse-distance-weighted mean propagation for numeric scores.
/// `rep_scores` must align with view.rep_labels.
std::vector<double> PropagateNumeric(const IndexView& view,
                                     const std::vector<double>& rep_scores,
                                     const PropagationOptions& options = {});
inline std::vector<double> PropagateNumeric(
    const TastiIndex& index, const std::vector<double>& rep_scores,
    const PropagationOptions& options = {}) {
  return PropagateNumeric(index.View(), rep_scores, options);
}

/// Distance-weighted majority vote for categorical scores: each record
/// gets the score value with the largest total weight among its k nearest
/// representatives.
std::vector<double> PropagateCategorical(const IndexView& view,
                                         const std::vector<double>& rep_scores,
                                         const PropagationOptions& options = {});
inline std::vector<double> PropagateCategorical(
    const TastiIndex& index, const std::vector<double>& rep_scores,
    const PropagationOptions& options = {}) {
  return PropagateCategorical(index.View(), rep_scores, options);
}

/// Limit-query propagation: records inherit the best score among their
/// stored min-k representatives (rare events often sit at cluster
/// boundaries next to a positive representative), plus a strictly-less-
/// than-unit bonus decreasing in distance to that representative, so
/// sorting descending ranks by score first and proximity second. Scores
/// must be integer-spaced for the tie-break to be order-preserving.
/// `use_best_of_k = false` restricts to the single nearest representative
/// (the paper's literal "k = 1 with ties broken by distance").
std::vector<double> PropagateLimit(const IndexView& view,
                                   const std::vector<double>& rep_scores,
                                   bool use_best_of_k = true);
inline std::vector<double> PropagateLimit(const TastiIndex& index,
                                          const std::vector<double>& rep_scores,
                                          bool use_best_of_k = true) {
  return PropagateLimit(index.View(), rep_scores, use_best_of_k);
}

/// Resumable propagation output: everything a later epoch needs to update
/// proxy scores incrementally instead of recomputing all N records.
struct PropagationState {
  PropagationMode mode = PropagationMode::kNumeric;
  PropagationOptions options;
  bool use_best_of_k = true;  ///< kLimit only (see PropagateLimit)

  /// Exact scorer outputs per representative, 0.0 placeholders for failed
  /// (invalid) representatives — same convention as RepresentativeScores.
  std::vector<double> rep_scores;
  /// Propagated proxy score per record; what queries consume.
  std::vector<double> scores;
  /// Numeric-mode per-record partials (empty for other modes): the
  /// inverse-distance weight total and weighted score total whose quotient
  /// is scores[i]. Kept alongside the quotient so a dirty-row recompute is
  /// self-contained and auditable (equivalence tests check them too).
  std::vector<double> weight_sum;
  std::vector<double> score_sum;

  /// Heap footprint estimate, for score-cache memory bounding.
  size_t ApproxBytes() const {
    return (rep_scores.capacity() + scores.capacity() +
            weight_sum.capacity() + score_sum.capacity()) *
               sizeof(double) +
           sizeof(PropagationState);
  }
};

/// Full propagation pass filling `state->scores` from `state->rep_scores`
/// per `state->mode`. Bit-identical to the matching plain Propagate* call;
/// mode, options, use_best_of_k, and rep_scores must be set beforehand.
void PropagateFull(const IndexView& view, PropagationState* state);

/// Incrementally updates `state->rep_scores` (computed against a parent
/// epoch) to match `view`: scores representatives appended since then plus
/// the `dirty_reps` positions whose label or validity changed (repaired
/// reps). Bit-identical to RepresentativeScores(view, scorer). Returns the
/// number of representatives scored.
size_t UpdateRepresentativeScores(const IndexView& view, const Scorer& scorer,
                                  const std::vector<uint32_t>& dirty_reps,
                                  PropagationState* state);

/// Incrementally updates `state->scores` (a completed pass over a parent
/// epoch) to match `view`: recomputes exactly the `dirty_rows` plus any
/// records appended since the state was built, running the same per-row
/// arithmetic as PropagateFull — so the result is bit-identical to a full
/// pass over `view`. state->rep_scores must already match `view` (see
/// UpdateRepresentativeScores). Returns the number of rows recomputed.
size_t PropagateIncremental(const IndexView& view,
                            const std::vector<uint32_t>& dirty_rows,
                            PropagationState* state);

}  // namespace tasti::core

#endif  // TASTI_CORE_PROPAGATION_H_
