#include "core/propagation.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "util/status.h"
#include "util/thread_pool.h"

namespace tasti::core {

std::vector<double> RepresentativeScores(const IndexView& view,
                                         const Scorer& scorer) {
  std::vector<double> scores;
  scores.reserve(view.num_representatives);
  const auto& labels = *view.rep_labels;
  const bool degraded = view.num_failed_representatives > 0;
  for (size_t i = 0; i < labels.size(); ++i) {
    if (degraded && (*view.rep_label_valid)[i] == 0) {
      // Placeholder score for a failed representative; propagation skips
      // it, so the value never reaches a proxy.
      scores.push_back(0.0);
      continue;
    }
    scores.push_back(scorer.Score(labels[i]));
  }
  return scores;
}

namespace {
// Validity mask for propagation, or nullptr when every representative is
// annotated (the common case keeps its branch-free inner loop).
const uint8_t* ValidityMask(const IndexView& view) {
  return view.num_failed_representatives > 0 ? view.rep_label_valid->data()
                                             : nullptr;
}

size_t EffectiveK(const IndexView& view, const PropagationOptions& options) {
  const size_t stored = view.k;
  if (options.k == 0) return stored;
  return std::min(options.k, stored);
}

// Inverse-distance weight 1 / (d + eps)^p. The propagation loops read one
// distance per stored neighbor, so std::pow dominated the pass; the common
// integer exponents take the cheap path. (glibc's pow is correctly rounded,
// so pow(x, 2) == x * x and pow(x, 1) == x bitwise — results are unchanged.)
inline double InverseDistanceWeight(double base, double power) {
  if (power == 2.0) return 1.0 / (base * base);
  if (power == 1.0) return 1.0 / base;
  return 1.0 / std::pow(base, power);
}
}  // namespace

std::vector<double> PropagateNumeric(const IndexView& view,
                                     const std::vector<double>& rep_scores,
                                     const PropagationOptions& options) {
  TASTI_CHECK(rep_scores.size() == view.num_representatives,
              "rep_scores must align with representatives");
  const size_t n = view.num_records;
  const size_t k = EffectiveK(view, options);
  const auto& topk = *view.topk;
  std::vector<double> out(n, 0.0);
  const size_t stored_k = view.k;
  const uint8_t* valid = ValidityMask(view);
  ParallelFor(0, n, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      // One pointer pair per record instead of a multiply per element read.
      const float* dist = topk.distances.data() + i * stored_k;
      const uint32_t* ids = topk.rep_ids.data() + i * stored_k;
      double weight_sum = 0.0;
      double score_sum = 0.0;
      for (size_t j = 0; j < k; ++j) {
        if (valid != nullptr && valid[ids[j]] == 0) continue;
        const double w = InverseDistanceWeight(dist[j] + options.epsilon,
                                               options.weight_power);
        weight_sum += w;
        score_sum += w * rep_scores[ids[j]];
      }
      out[i] = weight_sum > 0.0 ? score_sum / weight_sum : 0.0;
    }
  }, 2048);
  return out;
}

std::vector<double> PropagateCategorical(const IndexView& view,
                                         const std::vector<double>& rep_scores,
                                         const PropagationOptions& options) {
  TASTI_CHECK(rep_scores.size() == view.num_representatives,
              "rep_scores must align with representatives");
  const size_t n = view.num_records;
  const size_t k = EffectiveK(view, options);
  const auto& topk = *view.topk;
  std::vector<double> out(n, 0.0);
  const uint8_t* valid = ValidityMask(view);
  ParallelFor(0, n, [&](size_t lo, size_t hi) {
    // Votes keyed by exact score value; categorical scorers emit a small
    // discrete set, so a flat map is cheap.
    std::unordered_map<double, double> votes;
    const size_t stored_k = view.k;
    for (size_t i = lo; i < hi; ++i) {
      const float* dist = topk.distances.data() + i * stored_k;
      const uint32_t* ids = topk.rep_ids.data() + i * stored_k;
      votes.clear();
      for (size_t j = 0; j < k; ++j) {
        if (valid != nullptr && valid[ids[j]] == 0) continue;
        const double w = InverseDistanceWeight(dist[j] + options.epsilon,
                                               options.weight_power);
        votes[rep_scores[ids[j]]] += w;
      }
      double best_score = 0.0;
      double best_weight = -1.0;
      for (const auto& [value, weight] : votes) {
        if (weight > best_weight) {
          best_weight = weight;
          best_score = value;
        }
      }
      out[i] = best_score;
    }
  }, 2048);
  return out;
}

std::vector<double> PropagateLimit(const IndexView& view,
                                   const std::vector<double>& rep_scores,
                                   bool use_best_of_k) {
  TASTI_CHECK(rep_scores.size() == view.num_representatives,
              "rep_scores must align with representatives");
  const size_t n = view.num_records;
  const auto& topk = *view.topk;
  std::vector<double> out(n, 0.0);
  const uint8_t* valid = ValidityMask(view);
  ParallelFor(0, n, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      // Rank by the best-scoring representative within the stored min-k
      // list: a record sitting next to a high-scoring representative is a
      // strong candidate even if its single nearest representative scores
      // low (rare events hide at cluster boundaries). Ties within a score
      // level break by distance to that representative (paper Section 6.3).
      const float* drow = topk.distances.data() + i * topk.k;
      const uint32_t* idrow = topk.rep_ids.data() + i * topk.k;
      double best_score = 0.0;
      double best_dist = 0.0;
      bool any = false;
      const size_t neighbors = use_best_of_k ? topk.k : 1;
      for (size_t j = 0; j < neighbors; ++j) {
        if (valid != nullptr && valid[idrow[j]] == 0) continue;
        const double score = rep_scores[idrow[j]];
        const double dist = drow[j];
        if (!any || score > best_score ||
            (score == best_score && dist < best_dist)) {
          any = true;
          best_score = score;
          best_dist = dist;
        }
      }
      // Bonus in (0, 1): closer records of the same score rank earlier;
      // never crosses an integer score boundary. Records with no valid
      // neighbor rank after everything (degraded coverage).
      out[i] = any ? best_score + 0.999 / (1.0 + best_dist) : -1.0;
    }
  }, 2048);
  return out;
}

}  // namespace tasti::core
