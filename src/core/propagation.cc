#include "core/propagation.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "util/status.h"
#include "util/thread_pool.h"

namespace tasti::core {

std::vector<double> RepresentativeScores(const IndexView& view,
                                         const Scorer& scorer) {
  std::vector<double> scores;
  scores.reserve(view.num_representatives);
  const auto& labels = *view.rep_labels;
  const bool degraded = view.num_failed_representatives > 0;
  for (size_t i = 0; i < labels.size(); ++i) {
    if (degraded && (*view.rep_label_valid)[i] == 0) {
      // Placeholder score for a failed representative; propagation skips
      // it, so the value never reaches a proxy.
      scores.push_back(0.0);
      continue;
    }
    scores.push_back(scorer.Score(labels[i]));
  }
  return scores;
}

namespace {
// Validity mask for propagation, or nullptr when every representative is
// annotated (the common case keeps its branch-free inner loop).
const uint8_t* ValidityMask(const IndexView& view) {
  return view.num_failed_representatives > 0 ? view.rep_label_valid->data()
                                             : nullptr;
}

size_t EffectiveK(const IndexView& view, const PropagationOptions& options) {
  const size_t stored = view.k;
  if (options.k == 0) return stored;
  return std::min(options.k, stored);
}

// Inverse-distance weight 1 / (d + eps)^p. The propagation loops read one
// distance per stored neighbor, so std::pow dominated the pass; the common
// integer exponents take the cheap path. (glibc's pow is correctly rounded,
// so pow(x, 2) == x * x and pow(x, 1) == x bitwise — results are unchanged.)
inline double InverseDistanceWeight(double base, double power) {
  if (power == 2.0) return 1.0 / (base * base);
  if (power == 1.0) return 1.0 / base;
  return 1.0 / std::pow(base, power);
}

// ---- Per-row propagation kernels ----
//
// Both the full pass and PropagateIncremental evaluate records through
// these helpers, in the same neighbor order, so a row recomputed
// incrementally is bit-identical to the same row in a fresh full pass.

// Inverse-distance-weighted mean of one record's k stored neighbors.
inline double NumericRow(const float* dist, const uint32_t* ids, size_t k,
                         const uint8_t* valid, const double* rep_scores,
                         const PropagationOptions& options, double* weight_out,
                         double* score_out) {
  double weight_sum = 0.0;
  double score_sum = 0.0;
  for (size_t j = 0; j < k; ++j) {
    if (valid != nullptr && valid[ids[j]] == 0) continue;
    const double w =
        InverseDistanceWeight(dist[j] + options.epsilon, options.weight_power);
    weight_sum += w;
    score_sum += w * rep_scores[ids[j]];
  }
  if (weight_out != nullptr) *weight_out = weight_sum;
  if (score_out != nullptr) *score_out = score_sum;
  return weight_sum > 0.0 ? score_sum / weight_sum : 0.0;
}

// Distance-weighted majority vote of one record's k stored neighbors.
// `votes` is caller-provided scratch (cleared here). The winning value is
// chosen by weight, ties by smallest value — an order-independent rule, so
// the result does not depend on the scratch map's bucket history.
inline double CategoricalRow(const float* dist, const uint32_t* ids, size_t k,
                             const uint8_t* valid, const double* rep_scores,
                             const PropagationOptions& options,
                             std::unordered_map<double, double>* votes) {
  votes->clear();
  for (size_t j = 0; j < k; ++j) {
    if (valid != nullptr && valid[ids[j]] == 0) continue;
    const double w =
        InverseDistanceWeight(dist[j] + options.epsilon, options.weight_power);
    (*votes)[rep_scores[ids[j]]] += w;
  }
  double best_score = 0.0;
  double best_weight = -1.0;
  for (const auto& [value, weight] : *votes) {
    if (weight > best_weight ||
        (weight == best_weight && value < best_score)) {
      best_weight = weight;
      best_score = value;
    }
  }
  return best_score;
}

// Best-scoring stored neighbor (ties by distance) plus a sub-unit
// proximity bonus; see PropagateLimit for the ranking rationale.
inline double LimitRow(const float* dist, const uint32_t* ids, size_t k,
                       const uint8_t* valid, const double* rep_scores,
                       bool use_best_of_k) {
  double best_score = 0.0;
  double best_dist = 0.0;
  bool any = false;
  const size_t neighbors = use_best_of_k ? k : 1;
  for (size_t j = 0; j < neighbors; ++j) {
    if (valid != nullptr && valid[ids[j]] == 0) continue;
    const double score = rep_scores[ids[j]];
    const double d = dist[j];
    if (!any || score > best_score ||
        (score == best_score && d < best_dist)) {
      any = true;
      best_score = score;
      best_dist = d;
    }
  }
  return any ? best_score + 0.999 / (1.0 + best_dist) : -1.0;
}

// Recomputes one record row into the state arrays. `k` is the effective
// neighbor count for numeric/categorical; limit mode always reads the full
// stored row (matching PropagateLimit).
inline void RecomputeRow(const IndexView& view, size_t i, size_t k,
                         const uint8_t* valid, PropagationState* state,
                         std::unordered_map<double, double>* votes) {
  const auto& topk = *view.topk;
  const size_t stored_k = view.k;
  const float* dist = topk.distances.data() + i * stored_k;
  const uint32_t* ids = topk.rep_ids.data() + i * stored_k;
  const double* rep_scores = state->rep_scores.data();
  switch (state->mode) {
    case PropagationMode::kNumeric:
      state->scores[i] =
          NumericRow(dist, ids, k, valid, rep_scores, state->options,
                     &state->weight_sum[i], &state->score_sum[i]);
      break;
    case PropagationMode::kCategorical:
      state->scores[i] = CategoricalRow(dist, ids, k, valid, rep_scores,
                                        state->options, votes);
      break;
    case PropagationMode::kLimit:
      state->scores[i] =
          LimitRow(dist, ids, stored_k, valid, rep_scores,
                   state->use_best_of_k);
      break;
  }
}
}  // namespace

std::vector<double> PropagateNumeric(const IndexView& view,
                                     const std::vector<double>& rep_scores,
                                     const PropagationOptions& options) {
  TASTI_CHECK(rep_scores.size() == view.num_representatives,
              "rep_scores must align with representatives");
  const size_t n = view.num_records;
  const size_t k = EffectiveK(view, options);
  const auto& topk = *view.topk;
  std::vector<double> out(n, 0.0);
  const size_t stored_k = view.k;
  const uint8_t* valid = ValidityMask(view);
  ParallelFor(0, n, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      // One pointer pair per record instead of a multiply per element read.
      const float* dist = topk.distances.data() + i * stored_k;
      const uint32_t* ids = topk.rep_ids.data() + i * stored_k;
      out[i] = NumericRow(dist, ids, k, valid, rep_scores.data(), options,
                          nullptr, nullptr);
    }
  }, 2048);
  return out;
}

std::vector<double> PropagateCategorical(const IndexView& view,
                                         const std::vector<double>& rep_scores,
                                         const PropagationOptions& options) {
  TASTI_CHECK(rep_scores.size() == view.num_representatives,
              "rep_scores must align with representatives");
  const size_t n = view.num_records;
  const size_t k = EffectiveK(view, options);
  const auto& topk = *view.topk;
  std::vector<double> out(n, 0.0);
  const uint8_t* valid = ValidityMask(view);
  ParallelFor(0, n, [&](size_t lo, size_t hi) {
    // Votes keyed by exact score value; categorical scorers emit a small
    // discrete set, so a flat map is cheap.
    std::unordered_map<double, double> votes;
    const size_t stored_k = view.k;
    for (size_t i = lo; i < hi; ++i) {
      const float* dist = topk.distances.data() + i * stored_k;
      const uint32_t* ids = topk.rep_ids.data() + i * stored_k;
      out[i] = CategoricalRow(dist, ids, k, valid, rep_scores.data(), options,
                              &votes);
    }
  }, 2048);
  return out;
}

std::vector<double> PropagateLimit(const IndexView& view,
                                   const std::vector<double>& rep_scores,
                                   bool use_best_of_k) {
  TASTI_CHECK(rep_scores.size() == view.num_representatives,
              "rep_scores must align with representatives");
  const size_t n = view.num_records;
  const auto& topk = *view.topk;
  std::vector<double> out(n, 0.0);
  const uint8_t* valid = ValidityMask(view);
  ParallelFor(0, n, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      const float* drow = topk.distances.data() + i * topk.k;
      const uint32_t* idrow = topk.rep_ids.data() + i * topk.k;
      out[i] = LimitRow(drow, idrow, topk.k, valid, rep_scores.data(),
                        use_best_of_k);
    }
  }, 2048);
  return out;
}

void PropagateFull(const IndexView& view, PropagationState* state) {
  TASTI_CHECK(state != nullptr, "PropagateFull requires a state");
  TASTI_CHECK(state->rep_scores.size() == view.num_representatives,
              "state rep_scores must align with representatives");
  const size_t n = view.num_records;
  if (state->mode == PropagationMode::kNumeric) {
    state->weight_sum.assign(n, 0.0);
    state->score_sum.assign(n, 0.0);
  } else {
    state->weight_sum.clear();
    state->score_sum.clear();
  }
  state->scores.assign(n, 0.0);
  const size_t k = EffectiveK(view, state->options);
  const uint8_t* valid = ValidityMask(view);
  ParallelFor(0, n, [&](size_t lo, size_t hi) {
    std::unordered_map<double, double> votes;
    for (size_t i = lo; i < hi; ++i) {
      RecomputeRow(view, i, k, valid, state, &votes);
    }
  }, 2048);
}

size_t UpdateRepresentativeScores(const IndexView& view, const Scorer& scorer,
                                  const std::vector<uint32_t>& dirty_reps,
                                  PropagationState* state) {
  TASTI_CHECK(state != nullptr, "UpdateRepresentativeScores requires a state");
  const size_t old_reps = state->rep_scores.size();
  TASTI_CHECK(view.num_representatives >= old_reps,
              "representative count went backwards across epochs");
  const auto& labels = *view.rep_labels;
  const bool degraded = view.num_failed_representatives > 0;
  auto score_rep = [&](size_t r) {
    // Same placeholder convention as RepresentativeScores: a failed rep
    // contributes 0.0 (skipped by propagation) and is never scored.
    if (degraded && (*view.rep_label_valid)[r] == 0) {
      state->rep_scores[r] = 0.0;
      return;
    }
    state->rep_scores[r] = scorer.Score(labels[r]);
  };
  size_t scored = 0;
  state->rep_scores.resize(view.num_representatives);
  for (size_t r = old_reps; r < view.num_representatives; ++r) {
    score_rep(r);
    ++scored;
  }
  for (uint32_t r : dirty_reps) {
    TASTI_CHECK(r < old_reps, "dirty rep beyond the parent epoch's reps");
    score_rep(r);
    ++scored;
  }
  return scored;
}

size_t PropagateIncremental(const IndexView& view,
                            const std::vector<uint32_t>& dirty_rows,
                            PropagationState* state) {
  TASTI_CHECK(state != nullptr, "PropagateIncremental requires a state");
  TASTI_CHECK(state->rep_scores.size() == view.num_representatives,
              "update rep_scores before PropagateIncremental");
  const size_t old_n = state->scores.size();
  const size_t n = view.num_records;
  TASTI_CHECK(n >= old_n, "record count went backwards across epochs");
  state->scores.resize(n, 0.0);
  if (state->mode == PropagationMode::kNumeric) {
    TASTI_CHECK(state->weight_sum.size() == old_n &&
                    state->score_sum.size() == old_n,
                "numeric partials must align with the parent pass");
    state->weight_sum.resize(n, 0.0);
    state->score_sum.resize(n, 0.0);
  }
  const size_t k = EffectiveK(view, state->options);
  const uint8_t* valid = ValidityMask(view);
  // Dirty rows (lists changed by cracking / repaired-rep membership) plus
  // every appended record; clean rows keep their parent-epoch values,
  // which a full pass would reproduce bit-for-bit.
  ParallelFor(0, dirty_rows.size(), [&](size_t lo, size_t hi) {
    std::unordered_map<double, double> votes;
    for (size_t d = lo; d < hi; ++d) {
      const size_t i = dirty_rows[d];
      TASTI_CHECK(i < n, "dirty row out of range");
      RecomputeRow(view, i, k, valid, state, &votes);
    }
  }, 1024);
  ParallelFor(old_n, n, [&](size_t lo, size_t hi) {
    std::unordered_map<double, double> votes;
    for (size_t i = lo; i < hi; ++i) {
      RecomputeRow(view, i, k, valid, state, &votes);
    }
  }, 1024);
  return dirty_rows.size() + (n - old_n);
}

}  // namespace tasti::core
