#include "core/index.h"

#include <algorithm>

#include "cluster/fpf.h"
#include "cluster/ivf.h"
#include "cluster/kmeans.h"
#include "embed/pretrained.h"
#include "embed/triplet_trainer.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/status.h"
#include "util/timer.h"

namespace tasti::core {

TastiIndex TastiIndex::Build(const data::Dataset& dataset,
                             labeler::TargetLabeler* labeler,
                             const IndexOptions& options) {
  TASTI_CHECK(labeler != nullptr, "Build requires a labeler");
  labeler::FallibleAdapter adapter(labeler);
  return Build(dataset, &adapter, options);
}

TastiIndex TastiIndex::Build(const data::Dataset& dataset,
                             labeler::FallibleLabeler* labeler,
                             const IndexOptions& options) {
  TASTI_CHECK(labeler != nullptr, "Build requires a labeler");
  TASTI_CHECK(labeler->num_records() == dataset.size(),
              "labeler/dataset record count mismatch");
  TASTI_CHECK(options.num_representatives > 0, "need at least one representative");
  TASTI_CHECK(options.k > 0, "k must be positive");

  TASTI_SPAN("index.build");
  if (obs::MetricsEnabled()) {
    static obs::Counter* const builds =
        obs::MetricsRegistry::Global().counter("index.builds", "builds");
    builds->Increment();
  }

  TastiIndex index;
  index.options_ = options;
  Rng rng(options.seed);

  const embed::PretrainedEmbedder pretrained(dataset.feature_dim(),
                                             options.embedding_dim,
                                             options.seed ^ 0xA5A5A5A5ULL);

  // Step 1-2 (optional): triplet training on FPF-mined data.
  std::unique_ptr<embed::Embedder> trained;
  const embed::Embedder* embedder = &pretrained;
  if (options.use_triplet_training) {
    WallTimer timer;
    embed::TripletTrainOptions train_options;
    train_options.num_training_records = options.num_training_records;
    train_options.embedding_dim = options.embedding_dim;
    train_options.hidden_dim = options.hidden_dim;
    train_options.margin = options.margin;
    train_options.epochs = options.epochs;
    train_options.batch_size = options.batch_size;
    train_options.learning_rate = options.learning_rate;
    train_options.use_fpf_mining = options.use_fpf_mining;
    train_options.seed = options.seed * 1315423911ULL + 1;
    const size_t invocations_before = labeler->invocations();
    // Triplet mining needs some label for every sampled record; a failed
    // annotation falls back to the modality's neutral label (and is
    // counted) rather than aborting the build.
    labeler::BestEffortLabeler best_effort(
        labeler, labeler::DefaultLabelFor(dataset.modality));
    embed::TripletTrainResult trained_result = embed::TrainTripletEmbedder(
        dataset.features, pretrained, &best_effort, dataset.closeness,
        train_options);
    index.build_stats_.training_invocations =
        labeler->invocations() - invocations_before;
    index.build_stats_.training_label_failures = best_effort.failures();
    index.build_stats_.final_triplet_loss = trained_result.final_loss;
    trained = std::move(trained_result.embedder);
    embedder = trained.get();
    index.build_stats_.train_seconds = timer.Seconds();
  }

  // Step 3: embed every record; the index retains the embedder so new
  // records can be ingested later (streaming).
  {
    TASTI_SPAN("index.embed");
    WallTimer timer;
    index.embeddings_ = embedder->Embed(dataset.features);
    index.build_stats_.embed_seconds = timer.Seconds();
  }
  if (trained != nullptr) {
    index.embedder_ = std::move(trained);
  } else {
    index.embedder_ = std::make_unique<embed::PretrainedEmbedder>(
        dataset.feature_dim(), options.embedding_dim,
        options.seed ^ 0xA5A5A5A5ULL);
  }

  // Step 4: select cluster representatives.
  {
    TASTI_SPAN("index.select_reps");
    WallTimer timer;
    switch (options.rep_selection) {
      case RepSelectionPolicy::kFpfMixed:
        index.rep_record_ids_ = cluster::MixedFpfRandomSelection(
            index.embeddings_, options.num_representatives,
            options.random_rep_fraction, &rng);
        break;
      case RepSelectionPolicy::kRandom:
        index.rep_record_ids_ = cluster::RandomSelection(
            dataset.size(), options.num_representatives, &rng);
        break;
      case RepSelectionPolicy::kKMeans:
        index.rep_record_ids_ = cluster::KMeansSelection(
            index.embeddings_, options.num_representatives,
            options.seed * 13 + 7);
        break;
    }
    index.build_stats_.cluster_seconds = timer.Seconds();
  }

  // Annotate representatives with the target labeler. A representative
  // whose annotation fails permanently stays in the set but is marked
  // invalid; propagation excludes it and cracking can repair it later.
  {
    TASTI_SPAN("index.annotate_reps");
    const size_t invocations_before = labeler->invocations();
    index.rep_labels_.reserve(index.rep_record_ids_.size());
    index.rep_label_valid_.reserve(index.rep_record_ids_.size());
    for (size_t record : index.rep_record_ids_) {
      Result<data::LabelerOutput> label = labeler->TryLabel(record);
      if (label.ok()) {
        index.rep_labels_.push_back(std::move(label).value());
        index.rep_label_valid_.push_back(1);
      } else {
        index.rep_labels_.push_back(labeler::DefaultLabelFor(dataset.modality));
        index.rep_label_valid_.push_back(0);
        ++index.num_failed_reps_;
      }
    }
    index.build_stats_.rep_invocations =
        labeler->invocations() - invocations_before;
    index.build_stats_.failed_representatives = index.num_failed_reps_;
    if (index.num_failed_reps_ > 0 && obs::MetricsEnabled()) {
      obs::MetricsRegistry::Global()
          .counter("index.failed_reps", "reps")
          ->Increment(index.num_failed_reps_);
    }
  }

  index.rep_embeddings_ = index.embeddings_.GatherRows(index.rep_record_ids_);
  index.is_rep_.assign(dataset.size(), 0);
  for (size_t record : index.rep_record_ids_) index.is_rep_[record] = 1;

  // Step 5: min-k distances (exact, or IVF-approximate at scale).
  {
    TASTI_SPAN("index.min_k");
    WallTimer timer;
    if (options.use_ivf) {
      cluster::IvfOptions ivf_options;
      ivf_options.num_probes = options.ivf_probes;
      ivf_options.seed = options.seed * 11 + 3;
      cluster::IvfIndex ivf(index.rep_embeddings_, ivf_options);
      index.topk_ = ivf.SearchAll(index.embeddings_, options.k);
    } else {
      index.topk_ = cluster::ComputeTopK(index.embeddings_,
                                         index.rep_embeddings_, options.k);
    }
    index.build_stats_.distance_seconds = timer.Seconds();
  }
  return index;
}

void TastiIndex::AddRepresentative(size_t record_id, data::LabelerOutput label) {
  TASTI_CHECK(record_id < num_records(), "record_id out of range");
  if (is_rep_[record_id]) return;
  is_rep_[record_id] = 1;

  const uint32_t new_rep_id = static_cast<uint32_t>(rep_record_ids_.size());
  rep_record_ids_.push_back(record_id);
  rep_labels_.push_back(std::move(label));
  rep_label_valid_.push_back(1);
  // In-place append with geometric capacity growth: P single adds copy
  // O(P) rows amortized, not P full rep-matrix copies.
  rep_embeddings_.AppendRowsFrom(embeddings_, {record_id});
  cluster::UpdateTopKWithNewRep(embeddings_, rep_embeddings_,
                                rep_embeddings_.rows() - 1, new_rep_id, &topk_,
                                delta_.full ? nullptr : &delta_.dirty_rows);
}

size_t TastiIndex::CrackFrom(const labeler::CachingLabeler& cache) {
  std::vector<size_t> records;
  std::vector<data::LabelerOutput> labels;
  for (size_t record : cache.labeled_indices()) {
    if (is_rep_[record]) continue;
    records.push_back(record);
    labels.push_back(*cache.CachedLabel(record));
  }
  return CrackFromLabels(records, labels);
}

size_t TastiIndex::CrackFromLabels(const std::vector<size_t>& records,
                                   const std::vector<data::LabelerOutput>& labels) {
  TASTI_SPAN("index.crack");
  TASTI_CHECK(records.size() == labels.size(),
              "CrackFromLabels: records/labels size mismatch");
  // Collect the new representatives first so the embedding matrix grows
  // once, not per record.
  std::vector<size_t> additions;
  std::vector<size_t> addition_pos;
  for (size_t i = 0; i < records.size(); ++i) {
    if (!is_rep_[records[i]]) {
      additions.push_back(records[i]);
      addition_pos.push_back(i);
    }
  }
  if (additions.empty()) return 0;

  const size_t old_count = rep_record_ids_.size();
  for (size_t i = 0; i < additions.size(); ++i) {
    is_rep_[additions[i]] = 1;
    rep_record_ids_.push_back(additions[i]);
    rep_labels_.push_back(labels[addition_pos[i]]);
    rep_label_valid_.push_back(1);
  }
  rep_embeddings_.AppendRowsFrom(embeddings_, additions);

  if (additions.size() * 4 > old_count) {
    // Large cracking batch: a fresh top-k pass is cheaper than per-rep
    // relaxation. Row-level change tracking is lost, so the epoch delta
    // degrades to full.
    topk_ = cluster::ComputeTopK(embeddings_, rep_embeddings_, topk_.k);
    delta_.full = true;
  } else {
    for (size_t i = 0; i < additions.size(); ++i) {
      cluster::UpdateTopKWithNewRep(embeddings_, rep_embeddings_, old_count + i,
                                    static_cast<uint32_t>(old_count + i), &topk_,
                                    delta_.full ? nullptr : &delta_.dirty_rows);
    }
  }
  return additions.size();
}

size_t TastiIndex::AppendRecords(const nn::Matrix& new_features) {
  TASTI_SPAN("index.append_records");
  TASTI_CHECK(embedder_ != nullptr,
              "AppendRecords requires the index's embedding network");
  TASTI_CHECK(new_features.rows() > 0, "no records to append");
  const size_t first_new = embeddings_.rows();

  const nn::Matrix new_embeddings = embedder_->Embed(new_features);
  TASTI_CHECK(new_embeddings.cols() == embeddings_.cols(),
              "appended embedding width mismatch");
  std::vector<size_t> all_rows(new_embeddings.rows());
  for (size_t i = 0; i < all_rows.size(); ++i) all_rows[i] = i;
  embeddings_.AppendRowsFrom(new_embeddings, all_rows);
  is_rep_.resize(embeddings_.rows(), 0);

  // Min-k lists for the new rows only.
  const cluster::TopKDistances fresh =
      cluster::ComputeTopK(new_embeddings, rep_embeddings_, topk_.k);
  topk_.num_records = embeddings_.rows();
  topk_.rep_ids.insert(topk_.rep_ids.end(), fresh.rep_ids.begin(),
                       fresh.rep_ids.end());
  topk_.distances.insert(topk_.distances.end(), fresh.distances.begin(),
                         fresh.distances.end());
  return first_new;
}

bool TastiIndex::IsRepresentative(size_t record_id) const {
  TASTI_CHECK(record_id < is_rep_.size(), "record_id out of range");
  return is_rep_[record_id] != 0;
}

std::vector<size_t> TastiIndex::failed_representative_positions() const {
  std::vector<size_t> positions;
  if (num_failed_reps_ == 0) return positions;
  for (size_t i = 0; i < rep_label_valid_.size(); ++i) {
    if (rep_label_valid_[i] == 0) positions.push_back(i);
  }
  return positions;
}

std::vector<size_t> TastiIndex::failed_rep_record_ids() const {
  std::vector<size_t> ids;
  for (size_t pos : failed_representative_positions()) {
    ids.push_back(rep_record_ids_[pos]);
  }
  return ids;
}

void TastiIndex::RepairRepresentative(size_t rep_pos, data::LabelerOutput label) {
  TASTI_CHECK(rep_pos < rep_labels_.size(), "rep_pos out of range");
  TASTI_CHECK(rep_label_valid_[rep_pos] == 0,
              "RepairRepresentative on a valid representative");
  rep_labels_[rep_pos] = std::move(label);
  rep_label_valid_[rep_pos] = 1;
  --num_failed_reps_;
  // A repair leaves every min-k list unchanged but flips the rep from
  // propagation-excluded to included, so exactly the records holding it in
  // their stored neighbor list diverge from the previous epoch.
  if (!delta_.full) {
    delta_.dirty_reps.push_back(static_cast<uint32_t>(rep_pos));
    const uint32_t target = static_cast<uint32_t>(rep_pos);
    const size_t k = topk_.k;
    for (size_t i = 0; i < topk_.num_records; ++i) {
      const uint32_t* ids = topk_.rep_ids.data() + i * k;
      for (size_t j = 0; j < k; ++j) {
        if (ids[j] == target) {
          delta_.dirty_rows.push_back(static_cast<uint32_t>(i));
          break;
        }
      }
    }
  }
  if (obs::MetricsEnabled()) {
    static obs::Counter* const repairs =
        obs::MetricsRegistry::Global().counter("index.rep_repairs", "reps");
    repairs->Increment();
  }
}

IndexDelta TastiIndex::TakeDelta() {
  IndexDelta out = std::move(delta_);
  delta_ = IndexDelta{};
  delta_.full = false;
  delta_.base_num_representatives = num_representatives();
  delta_.base_num_records = num_records();
  if (!out.full) {
    auto sort_unique = [](std::vector<uint32_t>* v) {
      std::sort(v->begin(), v->end());
      v->erase(std::unique(v->begin(), v->end()), v->end());
    };
    sort_unique(&out.dirty_rows);
    sort_unique(&out.dirty_reps);
    // Rows and reps created inside this window are covered by the growth
    // baselines; keep only entries the parent epoch already had.
    out.dirty_rows.erase(
        std::partition_point(
            out.dirty_rows.begin(), out.dirty_rows.end(),
            [&](uint32_t r) { return r < out.base_num_records; }),
        out.dirty_rows.end());
    out.dirty_reps.erase(
        std::partition_point(
            out.dirty_reps.begin(), out.dirty_reps.end(),
            [&](uint32_t r) { return r < out.base_num_representatives; }),
        out.dirty_reps.end());
  }
  return out;
}

}  // namespace tasti::core
