#include "core/proxy.h"

#include "obs/trace.h"
#include "util/status.h"
#include "util/timer.h"

namespace tasti::core {

std::vector<double> ComputeProxyScores(const IndexView& view,
                                       const Scorer& scorer,
                                       PropagationMode mode,
                                       const PropagationOptions& options,
                                       ProxyTimings* timings) {
  WallTimer timer;
  std::vector<double> rep_scores;
  {
    TASTI_SPAN("query.proxy.rep_scores");
    rep_scores = RepresentativeScores(view, scorer);
  }
  if (timings != nullptr) {
    timings->rep_score_seconds = timer.Seconds();
    timer.Restart();
  }

  TASTI_SPAN("query.proxy.propagate");
  std::vector<double> propagated;
  switch (mode) {
    case PropagationMode::kNumeric:
      propagated = PropagateNumeric(view, rep_scores, options);
      break;
    case PropagationMode::kCategorical:
      propagated = PropagateCategorical(view, rep_scores, options);
      break;
    case PropagationMode::kLimit:
      propagated = PropagateLimit(view, rep_scores);
      break;
    default:
      TASTI_CHECK(false, "unknown propagation mode");
  }
  if (timings != nullptr) timings->propagation_seconds = timer.Seconds();
  return propagated;
}

std::vector<double> ComputeProxyScores(const TastiIndex& index,
                                       const Scorer& scorer,
                                       PropagationMode mode,
                                       const PropagationOptions& options,
                                       ProxyTimings* timings) {
  return ComputeProxyScores(index.View(), scorer, mode, options, timings);
}

void ComputeProxyState(const IndexView& view, const Scorer& scorer,
                       PropagationMode mode, const PropagationOptions& options,
                       PropagationState* state, ProxyTimings* timings) {
  TASTI_CHECK(state != nullptr, "ComputeProxyState requires a state");
  WallTimer timer;
  state->mode = mode;
  state->options = options;
  state->use_best_of_k = true;  // ComputeProxyScores' PropagateLimit default
  {
    TASTI_SPAN("query.proxy.rep_scores");
    state->rep_scores = RepresentativeScores(view, scorer);
  }
  if (timings != nullptr) {
    timings->rep_score_seconds = timer.Seconds();
    timer.Restart();
  }
  TASTI_SPAN("query.proxy.propagate");
  PropagateFull(view, state);
  if (timings != nullptr) timings->propagation_seconds = timer.Seconds();
}

size_t UpdateProxyState(const IndexView& view, const Scorer& scorer,
                        const std::vector<uint32_t>& dirty_rows,
                        const std::vector<uint32_t>& dirty_reps,
                        PropagationState* state, ProxyTimings* timings) {
  TASTI_CHECK(state != nullptr, "UpdateProxyState requires a state");
  WallTimer timer;
  {
    TASTI_SPAN("query.proxy.rep_scores_delta");
    UpdateRepresentativeScores(view, scorer, dirty_reps, state);
  }
  if (timings != nullptr) {
    timings->rep_score_seconds = timer.Seconds();
    timer.Restart();
  }
  TASTI_SPAN("query.proxy.propagate_delta");
  const size_t recomputed = PropagateIncremental(view, dirty_rows, state);
  if (timings != nullptr) timings->propagation_seconds = timer.Seconds();
  return recomputed;
}

std::vector<double> ExactScores(const data::Dataset& dataset,
                                const Scorer& scorer) {
  std::vector<double> out;
  out.reserve(dataset.size());
  for (const data::LabelerOutput& label : dataset.ground_truth) {
    out.push_back(scorer.Score(label));
  }
  return out;
}

}  // namespace tasti::core
