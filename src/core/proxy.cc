#include "core/proxy.h"

#include "util/status.h"

namespace tasti::core {

std::vector<double> ComputeProxyScores(const TastiIndex& index,
                                       const Scorer& scorer,
                                       PropagationMode mode,
                                       const PropagationOptions& options) {
  const std::vector<double> rep_scores = RepresentativeScores(index, scorer);
  switch (mode) {
    case PropagationMode::kNumeric:
      return PropagateNumeric(index, rep_scores, options);
    case PropagationMode::kCategorical:
      return PropagateCategorical(index, rep_scores, options);
    case PropagationMode::kLimit:
      return PropagateLimit(index, rep_scores);
  }
  TASTI_CHECK(false, "unknown propagation mode");
  return {};
}

std::vector<double> ExactScores(const data::Dataset& dataset,
                                const Scorer& scorer) {
  std::vector<double> out;
  out.reserve(dataset.size());
  for (const data::LabelerOutput& label : dataset.ground_truth) {
    out.push_back(scorer.Score(label));
  }
  return out;
}

}  // namespace tasti::core
