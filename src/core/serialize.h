#ifndef TASTI_CORE_SERIALIZE_H_
#define TASTI_CORE_SERIALIZE_H_

/// \file serialize.h
/// Binary (de)serialization of TASTI indexes.
///
/// An index is expensive to construct (labeler invocations, triplet
/// training) and is designed to be reused across queries and sessions;
/// persistence is therefore part of the core API. The format is a
/// little-endian tagged binary layout, versioned by a header.

#include <string>

#include "core/index.h"
#include "util/status.h"

namespace tasti::core {

/// Saves/loads TastiIndex instances. All methods are stateless.
class IndexSerializer {
 public:
  /// Writes the index to `path` atomically (tmp file + fsync + rename):
  /// a crash mid-Save can never leave a truncated index at `path`.
  /// Overwrites existing files.
  static Status Save(const TastiIndex& index, const std::string& path);

  /// Reads an index from `path`.
  static Result<TastiIndex> Load(const std::string& path);

  /// Serializes to an in-memory buffer (used by tests and Save). The
  /// buffer ends with an integrity footer (util/checksum.h). Fails if the
  /// embedded embedder cannot be serialized.
  static Result<std::string> SerializeToString(const TastiIndex& index);

  /// Parses from an in-memory buffer. The footer is verified before any
  /// payload bytes are interpreted, so truncated or bit-flipped files are
  /// rejected with a Status.
  static Result<TastiIndex> DeserializeFromString(const std::string& buffer);
};

}  // namespace tasti::core

#endif  // TASTI_CORE_SERIALIZE_H_
