#ifndef TASTI_CORE_SCORER_H_
#define TASTI_CORE_SCORER_H_

/// \file scorer.h
/// Query-specific scoring functions (paper Section 4.2):
/// TargetLabelerOutput -> score. TASTI evaluates a scorer exactly on the
/// cluster representatives and propagates the scores to all other records.
///
/// Implementing a new query type is a few lines:
///
///   core::LambdaScorer at_least_five(
///       [](const data::LabelerOutput& out) {
///         return data::CountClass(out, data::ObjectClass::kCar) >= 5 ? 1.0
///                                                                    : 0.0;
///       });

#include <functional>
#include <memory>
#include <string>

#include "data/schema.h"

namespace tasti::core {

/// A query-specific scoring function over target labeler outputs.
class Scorer {
 public:
  virtual ~Scorer() = default;

  /// Maps one labeler output to a numeric score.
  virtual double Score(const data::LabelerOutput& output) const = 0;

  /// Categorical scorers propagate by distance-weighted majority vote;
  /// numeric scorers by inverse-distance-weighted mean (Section 4.3).
  virtual bool categorical() const { return false; }

  virtual std::string Name() const = 0;
};

/// Number of boxes of a class ("count the cars per frame", BlazeIt-style
/// aggregation).
class CountScorer : public Scorer {
 public:
  explicit CountScorer(data::ObjectClass cls) : cls_(cls) {}
  double Score(const data::LabelerOutput& output) const override {
    return data::CountClass(output, cls_);
  }
  std::string Name() const override {
    return "count(" + data::ObjectClassName(cls_) + ")";
  }

 private:
  data::ObjectClass cls_;
};

/// 1 if any box of the class is present, else 0 (selection predicates).
class PresenceScorer : public Scorer {
 public:
  explicit PresenceScorer(data::ObjectClass cls) : cls_(cls) {}
  double Score(const data::LabelerOutput& output) const override {
    return data::CountClass(output, cls_) > 0 ? 1.0 : 0.0;
  }
  bool categorical() const override { return true; }
  std::string Name() const override {
    return "has(" + data::ObjectClassName(cls_) + ")";
  }

 private:
  data::ObjectClass cls_;
};

/// 1 if any box of the class sits in the left half of the frame
/// (the position-predicate query of paper Section 6.4, Figure 7).
class LeftPresenceScorer : public Scorer {
 public:
  explicit LeftPresenceScorer(data::ObjectClass cls) : cls_(cls) {}
  double Score(const data::LabelerOutput& output) const override {
    return data::HasClassOnLeft(output, cls_) ? 1.0 : 0.0;
  }
  bool categorical() const override { return true; }
  std::string Name() const override {
    return "has_left(" + data::ObjectClassName(cls_) + ")";
  }

 private:
  data::ObjectClass cls_;
};

/// Mean x-position of boxes of the class (the regression query of paper
/// Section 6.4, Figure 8). Empty frames score 0.5 (frame center).
class MeanXScorer : public Scorer {
 public:
  explicit MeanXScorer(data::ObjectClass cls) : cls_(cls) {}
  double Score(const data::LabelerOutput& output) const override {
    return data::MeanXPosition(output, cls_);
  }
  std::string Name() const override {
    return "mean_x(" + data::ObjectClassName(cls_) + ")";
  }

 private:
  data::ObjectClass cls_;
};

/// Number of predicates of a parsed question (WikiSQL aggregation).
class PredicateCountScorer : public Scorer {
 public:
  double Score(const data::LabelerOutput& output) const override {
    const auto* text = std::get_if<data::TextLabel>(&output);
    return text != nullptr ? text->num_predicates : 0.0;
  }
  std::string Name() const override { return "num_predicates"; }
};

/// 1 if the question parses to the given SQL operator (WikiSQL selection:
/// the paper selects "star operators", i.e. plain SELECTs).
class SqlOpScorer : public Scorer {
 public:
  explicit SqlOpScorer(data::SqlOp op) : op_(op) {}
  double Score(const data::LabelerOutput& output) const override {
    const auto* text = std::get_if<data::TextLabel>(&output);
    return (text != nullptr && text->op == op_) ? 1.0 : 0.0;
  }
  bool categorical() const override { return true; }
  std::string Name() const override { return "op=" + data::SqlOpName(op_); }

 private:
  data::SqlOp op_;
};

/// 1 for male speakers (Common Voice aggregation and selection).
class MaleScorer : public Scorer {
 public:
  double Score(const data::LabelerOutput& output) const override {
    const auto* speech = std::get_if<data::SpeechLabel>(&output);
    return (speech != nullptr && speech->gender == data::Gender::kMale) ? 1.0
                                                                        : 0.0;
  }
  bool categorical() const override { return true; }
  std::string Name() const override { return "gender=male"; }
};

/// 1 if the frame contains at least `threshold` boxes of the class (limit
/// queries hunting rare events, paper Section 6.3).
class AtLeastCountScorer : public Scorer {
 public:
  AtLeastCountScorer(data::ObjectClass cls, int threshold)
      : cls_(cls), threshold_(threshold) {}
  double Score(const data::LabelerOutput& output) const override {
    return data::CountClass(output, cls_) >= threshold_ ? 1.0 : 0.0;
  }
  bool categorical() const override { return true; }
  std::string Name() const override {
    return "count(" + data::ObjectClassName(cls_) +
           ")>=" + std::to_string(threshold_);
  }

 private:
  data::ObjectClass cls_;
  int threshold_;
};

/// Wraps an arbitrary function as a scorer (the custom-score API of paper
/// Section 4.2).
class LambdaScorer : public Scorer {
 public:
  using Fn = std::function<double(const data::LabelerOutput&)>;

  explicit LambdaScorer(Fn fn, bool categorical = false,
                        std::string name = "custom")
      : fn_(std::move(fn)), categorical_(categorical), name_(std::move(name)) {}

  double Score(const data::LabelerOutput& output) const override {
    return fn_(output);
  }
  bool categorical() const override { return categorical_; }
  std::string Name() const override { return name_; }

 private:
  Fn fn_;
  bool categorical_;
  std::string name_;
};

}  // namespace tasti::core

#endif  // TASTI_CORE_SCORER_H_
