#ifndef TASTI_CORE_PARTITION_H_
#define TASTI_CORE_PARTITION_H_

/// \file partition.h
/// Record-range partitioning for sharded indexes (src/shard/).
///
/// Records are split into K contiguous ranges so global record ids remain
/// stable under sharding: shard s owns [begin(s), end(s)) and a record's
/// global id never changes when the shard count does. Contiguity is what
/// makes scatter-gather merges cheap — a shard's selected set maps back to
/// global ids by adding one offset, and per-shard sorted lists concatenate
/// into a globally sorted list.
///
/// Appended records (streaming ingestion) always extend the *last* shard,
/// keeping the global id space dense and the owning-shard computation a
/// binary search over K+1 boundaries.

#include <cstddef>
#include <vector>

namespace tasti::core {

/// Contiguous, balanced partition of [0, num_records) into K ranges.
/// Shard sizes differ by at most one record (earlier shards get the
/// remainder). Copyable and cheap: K+1 boundary offsets.
class Partitioner {
 public:
  /// Empty partition (0 shards, 0 records).
  Partitioner() = default;

  /// Splits `num_records` into `num_shards` contiguous ranges. Shards may
  /// be empty when num_shards > num_records; num_shards must be >= 1.
  Partitioner(size_t num_records, size_t num_shards);

  size_t num_shards() const {
    return bounds_.empty() ? 0 : bounds_.size() - 1;
  }
  size_t num_records() const { return bounds_.empty() ? 0 : bounds_.back(); }

  /// Shard owning `record_id`. Ids at or beyond num_records() belong to
  /// the last shard (appends extend it).
  size_t ShardOf(size_t record_id) const;

  /// The [begin, end) global-id range of shard `shard`.
  size_t ShardBegin(size_t shard) const { return bounds_[shard]; }
  size_t ShardEnd(size_t shard) const { return bounds_[shard + 1]; }
  size_t ShardSize(size_t shard) const {
    return bounds_[shard + 1] - bounds_[shard];
  }

  /// Global record id -> the owning shard's local id.
  size_t ToLocal(size_t record_id) const {
    return record_id - bounds_[ShardOf(record_id)];
  }

  /// Shard-local id -> global record id.
  size_t ToGlobal(size_t shard, size_t local_id) const {
    return bounds_[shard] + local_id;
  }

  /// Per-shard global-id offsets (begin of each shard), e.g. for
  /// queries::Merge* calls.
  std::vector<size_t> ShardOffsets() const;

  /// Per-shard record counts.
  std::vector<size_t> ShardSizes() const;

  /// Grows the last shard by `additional_records` (streaming appends keep
  /// global ids dense, so only the final boundary moves).
  void ExtendLastShard(size_t additional_records);

 private:
  std::vector<size_t> bounds_;  ///< K+1 offsets; bounds_[0] == 0
};

}  // namespace tasti::core

#endif  // TASTI_CORE_PARTITION_H_
