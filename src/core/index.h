#ifndef TASTI_CORE_INDEX_H_
#define TASTI_CORE_INDEX_H_

/// \file index.h
/// The TASTI index (paper Algorithm 1 and Figure 1b): per-record
/// embeddings, annotated cluster representatives, and min-k distances from
/// every record to its nearest representatives.
///
/// Typical usage:
///
///   auto dataset = data::MakeNightStreet(opts);
///   labeler::SimulatedLabeler oracle(&dataset);
///   labeler::CachingLabeler cache(&oracle);
///   auto index = core::TastiIndex::Build(dataset, &cache, core::IndexOptions{});
///   core::CountScorer cars(data::ObjectClass::kCar);
///   std::vector<double> proxy = core::ComputeProxyScores(index, cars);
///   // feed `proxy` into queries::* algorithms

#include <cstdint>
#include <memory>
#include <vector>

#include "cluster/topk.h"
#include "core/index_options.h"
#include "data/dataset.h"
#include "embed/embedder.h"
#include "labeler/labeler.h"
#include "nn/matrix.h"

namespace tasti::core {

/// Read-only view of the propagation-relevant state of an index: what a
/// query needs to turn representative annotations into proxy scores, and
/// nothing else. Both the mutable TastiIndex and the immutable serving
/// snapshots (serve::IndexSnapshot) produce this view, so propagation and
/// proxy generation are decoupled from where the state lives. The pointed-to
/// storage must outlive the view.
struct IndexView {
  size_t num_records = 0;
  size_t num_representatives = 0;
  size_t k = 0;  ///< stored neighbors per record
  const cluster::TopKDistances* topk = nullptr;
  const std::vector<data::LabelerOutput>* rep_labels = nullptr;
  /// Aligned with rep_labels; entry 0 marks a representative whose oracle
  /// annotation failed (excluded from propagation).
  const std::vector<uint8_t>* rep_label_valid = nullptr;
  size_t num_failed_representatives = 0;
};

/// Mutations accumulated by a TastiIndex since the last TakeDelta() call —
/// the raw material for incremental propagation across serving epochs. A
/// consumer holding a PropagationState computed at the baseline needs to
/// recompute exactly: the dirty_rows, the records appended beyond
/// base_num_records, and the scorer outputs of representatives appended
/// beyond base_num_representatives or listed in dirty_reps.
struct IndexDelta {
  /// True when the delta cannot be expressed row-wise: no baseline was
  /// ever taken (fresh or deserialized index), or a large cracking batch
  /// took the full top-k rebuild path. Consumers must recompute all rows.
  bool full = true;
  /// Representative / record counts at the baseline.
  size_t base_num_representatives = 0;
  size_t base_num_records = 0;
  /// Records (< base_num_records) whose min-k list changed; sorted, unique.
  std::vector<uint32_t> dirty_rows;
  /// Representative positions (< base_num_representatives) whose label or
  /// validity changed (repairs); sorted, unique.
  std::vector<uint32_t> dirty_reps;
};

/// Wall-clock and budget breakdown of one Build call (Figure 2's bars).
struct BuildStats {
  double mine_seconds = 0.0;      ///< pretrained embedding + FPF mining
  double train_seconds = 0.0;     ///< triplet training epochs
  double embed_seconds = 0.0;     ///< embedding all records
  double cluster_seconds = 0.0;   ///< representative selection (FPF)
  double distance_seconds = 0.0;  ///< min-k distance computation
  size_t training_invocations = 0;  ///< labeler calls for triplet data
  size_t rep_invocations = 0;       ///< labeler calls for representatives
  double final_triplet_loss = 0.0;
  /// Representatives whose annotation failed permanently (degraded build).
  size_t failed_representatives = 0;
  /// Training annotations that failed and used a fallback label.
  size_t training_label_failures = 0;

  double TotalSeconds() const {
    return mine_seconds + train_seconds + embed_seconds + cluster_seconds +
           distance_seconds;
  }
  size_t TotalInvocations() const {
    return training_invocations + rep_invocations;
  }
};

/// An immutable-by-default semantic index; cracking appends representatives.
class TastiIndex {
 public:
  /// Builds an index per Algorithm 1. The labeler is charged
  /// `options.num_training_records` training annotations (if triplet
  /// training is on) plus one annotation per representative; wrap it in a
  /// CachingLabeler to avoid double-charging overlapping records.
  static TastiIndex Build(const data::Dataset& dataset,
                          labeler::TargetLabeler* labeler,
                          const IndexOptions& options);

  /// Builds against a fallible oracle. Construction never aborts on oracle
  /// failure: representatives whose annotation fails permanently are kept
  /// in the representative set but marked invalid (rep_label_valid()), and
  /// propagation excludes them. With a fault-free oracle this is
  /// bit-identical to the infallible overload (which delegates here).
  static TastiIndex Build(const data::Dataset& dataset,
                          labeler::FallibleLabeler* oracle,
                          const IndexOptions& options);

  // --- Read accessors ---

  /// Record indices of the representatives, in representative order.
  const std::vector<size_t>& rep_record_ids() const { return rep_record_ids_; }

  /// Cached target labeler outputs, aligned with rep_record_ids().
  const std::vector<data::LabelerOutput>& rep_labels() const {
    return rep_labels_;
  }

  /// Embeddings of every record (records x embedding_dim).
  const nn::Matrix& embeddings() const { return embeddings_; }

  /// Embeddings of the representatives (reps x embedding_dim).
  const nn::Matrix& rep_embeddings() const { return rep_embeddings_; }

  /// Min-k distances from every record to its nearest representatives.
  const cluster::TopKDistances& topk() const { return topk_; }

  /// Per-representative validity flags, aligned with rep_labels(). 0 marks
  /// a representative whose oracle annotation failed; its label is a
  /// placeholder and must not feed propagation.
  const std::vector<uint8_t>& rep_label_valid() const {
    return rep_label_valid_;
  }

  /// Representatives currently lacking a valid annotation.
  size_t num_failed_representatives() const { return num_failed_reps_; }

  /// Positions (into rep_record_ids()) of failed representatives.
  std::vector<size_t> failed_representative_positions() const;

  /// Record ids of failed representatives.
  std::vector<size_t> failed_rep_record_ids() const;

  /// Installs a late-arriving annotation for the failed representative at
  /// `rep_pos`, restoring it to the propagation set (index self-healing).
  void RepairRepresentative(size_t rep_pos, data::LabelerOutput label);

  size_t num_records() const { return embeddings_.rows(); }
  size_t num_representatives() const { return rep_record_ids_.size(); }
  size_t k() const { return topk_.k; }

  /// Propagation-relevant view of this index. Valid only until the next
  /// mutation (cracking, append, repair).
  IndexView View() const {
    IndexView view;
    view.num_records = num_records();
    view.num_representatives = num_representatives();
    view.k = topk_.k;
    view.topk = &topk_;
    view.rep_labels = &rep_labels_;
    view.rep_label_valid = &rep_label_valid_;
    view.num_failed_representatives = num_failed_reps_;
    return view;
  }

  const BuildStats& build_stats() const { return build_stats_; }
  const IndexOptions& options() const { return options_; }

  /// The embedding network the index was built with (trained or
  /// pretrained); used to embed newly appended records. Null only for
  /// indexes loaded from pre-embedder file versions.
  const embed::Embedder* embedder() const { return embedder_.get(); }

  // --- Streaming ingestion ---

  /// Appends new records (rows of sensor features): embeds them with the
  /// stored embedding network and computes their min-k distances. The new
  /// records start unannotated; labeling them during queries and cracking
  /// makes them representatives like any others. Returns the index of the
  /// first appended record. Requires embedder() != nullptr.
  size_t AppendRecords(const nn::Matrix& new_features);

  // --- Cracking (paper Section 3.3) ---

  /// Adds a record annotated during query execution as a new
  /// representative and updates every record's min-k list (one distance
  /// evaluation per record). No-op if the record is already a
  /// representative.
  void AddRepresentative(size_t record_id, data::LabelerOutput label);

  /// Bulk-adds every cached annotation of `cache` not yet in the index.
  /// Returns the number of representatives added.
  size_t CrackFrom(const labeler::CachingLabeler& cache);

  /// Bulk-adds annotated records by parallel (record id, label) vectors,
  /// skipping records that are already representatives. Returns the number
  /// of representatives added.
  size_t CrackFromLabels(const std::vector<size_t>& records,
                         const std::vector<data::LabelerOutput>& labels);

  /// True if the record is currently a representative.
  bool IsRepresentative(size_t record_id) const;

  // --- Epoch deltas (incremental propagation) ---

  /// Returns every change since the previous TakeDelta() (dirty min-k
  /// rows, repaired representatives, growth baselines) and starts a fresh
  /// accumulation window at the current state. The first call on an index
  /// always reports a full delta. Serving publishes one snapshot per
  /// TakeDelta, so each epoch's delta is relative to its parent epoch.
  IndexDelta TakeDelta();

  // Internal constructor used by serialization; prefer Build.
  TastiIndex() = default;

  friend class IndexSerializer;

 private:
  IndexOptions options_;
  nn::Matrix embeddings_;
  nn::Matrix rep_embeddings_;
  std::vector<size_t> rep_record_ids_;
  std::vector<data::LabelerOutput> rep_labels_;
  std::vector<uint8_t> rep_label_valid_;  // aligned with rep_labels_
  size_t num_failed_reps_ = 0;
  std::vector<uint8_t> is_rep_;  // per record flag
  cluster::TopKDistances topk_;
  BuildStats build_stats_;
  std::unique_ptr<embed::Embedder> embedder_;
  /// Accumulates mutations since the last TakeDelta(); starts full so an
  /// index without a baseline (fresh build, deserialized) never pretends
  /// to have a row-wise delta.
  IndexDelta delta_;
};

}  // namespace tasti::core

#endif  // TASTI_CORE_INDEX_H_
