#include "core/index_stats.h"

#include <algorithm>
#include <cstdio>

#include "util/stats.h"

namespace tasti::core {

IndexStats ComputeIndexStats(const TastiIndex& index) {
  IndexStats stats;
  stats.num_records = index.num_records();
  stats.num_representatives = index.num_representatives();
  stats.num_failed_representatives = index.num_failed_representatives();
  stats.failed_representatives = index.failed_rep_record_ids();
  if (stats.num_records == 0 || stats.num_representatives == 0) return stats;

  const auto& topk = index.topk();
  std::vector<double> nearest(stats.num_records);
  std::vector<size_t> cluster_sizes(stats.num_representatives, 0);
  RunningStats dist_stats;
  for (size_t i = 0; i < stats.num_records; ++i) {
    nearest[i] = topk.Dist(i, 0);
    dist_stats.Add(nearest[i]);
    ++cluster_sizes[topk.RepId(i, 0)];
  }
  stats.mean_nearest_distance = dist_stats.mean();
  stats.max_nearest_distance = dist_stats.max();
  stats.p99_nearest_distance = Quantile(nearest, 0.99);
  stats.largest_cluster =
      *std::max_element(cluster_sizes.begin(), cluster_sizes.end());
  stats.empty_clusters = static_cast<size_t>(
      std::count(cluster_sizes.begin(), cluster_sizes.end(), size_t{0}));
  stats.mean_cluster_size = static_cast<double>(stats.num_records) /
                            static_cast<double>(stats.num_representatives);
  return stats;
}

std::string IndexStats::ToString() const {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "index: %zu records, %zu reps | nearest-rep distance "
                "mean=%.4f p99=%.4f max=%.4f | clusters mean=%.1f largest=%zu "
                "empty=%zu",
                num_records, num_representatives, mean_nearest_distance,
                p99_nearest_distance, max_nearest_distance, mean_cluster_size,
                largest_cluster, empty_clusters);
  std::string out = buf;
  if (num_failed_representatives > 0) {
    std::snprintf(buf, sizeof(buf),
                  " | degraded: %zu failed reps (coverage %.1f%%)",
                  num_failed_representatives,
                  100.0 * static_cast<double>(num_representatives -
                                              num_failed_representatives) /
                      static_cast<double>(num_representatives));
    out += buf;
  }
  return out;
}

}  // namespace tasti::core
