#ifndef TASTI_NN_TRIPLET_H_
#define TASTI_NN_TRIPLET_H_

/// \file triplet.h
/// The triplet loss (Weinberger & Saul 2009) on Euclidean embedding
/// distances, exactly as defined in the paper (Section 5):
///
///   l(a, p, n) = max(0, m + |phi(a) - phi(p)| - |phi(a) - phi(n)|)
///
/// with margin m > 0 and |.| the Euclidean norm (distances, not squared
/// distances).

#include <cstddef>

#include "nn/matrix.h"

namespace tasti::nn {

/// Result of a batched triplet loss evaluation.
struct TripletLossResult {
  /// Mean per-example hinge loss over the batch.
  double loss = 0.0;
  /// Fraction of triplets with non-zero loss (margin violations).
  double active_fraction = 0.0;
  /// dLoss/dAnchor, dLoss/dPositive, dLoss/dNegative — each batch x dim,
  /// already divided by the batch size.
  Matrix grad_anchor;
  Matrix grad_positive;
  Matrix grad_negative;
};

/// Computes the batched triplet loss and its gradients with respect to the
/// three embedding blocks. `anchor`, `positive`, and `negative` must have
/// identical shapes (batch x dim).
TripletLossResult TripletLoss(const Matrix& anchor, const Matrix& positive,
                              const Matrix& negative, float margin);

/// Convenience: loss value only (no gradients), e.g. for validation.
double TripletLossValue(const Matrix& anchor, const Matrix& positive,
                        const Matrix& negative, float margin);

}  // namespace tasti::nn

#endif  // TASTI_NN_TRIPLET_H_
