#include "nn/optimizer.h"

#include <cmath>

#include "util/status.h"

namespace tasti::nn {

Adam::Adam(std::vector<Parameter*> params, Options options)
    : params_(std::move(params)), options_(options) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (Parameter* p : params_) {
    TASTI_CHECK(p != nullptr, "Adam given null parameter");
    m_.emplace_back(p->value.rows(), p->value.cols());
    v_.emplace_back(p->value.rows(), p->value.cols());
  }
}

void Adam::Step() {
  ++t_;
  const float b1 = options_.beta1;
  const float b2 = options_.beta2;
  const float bias1 = 1.0f - std::pow(b1, static_cast<float>(t_));
  const float bias2 = 1.0f - std::pow(b2, static_cast<float>(t_));
  for (size_t i = 0; i < params_.size(); ++i) {
    Parameter* p = params_[i];
    float* w = p->value.data();
    const float* g = p->grad.data();
    float* m = m_[i].data();
    float* v = v_[i].data();
    for (size_t j = 0; j < p->value.size(); ++j) {
      float grad = g[j] + options_.weight_decay * w[j];
      m[j] = b1 * m[j] + (1.0f - b1) * grad;
      v[j] = b2 * v[j] + (1.0f - b2) * grad * grad;
      const float mhat = m[j] / bias1;
      const float vhat = v[j] / bias2;
      w[j] -= options_.learning_rate * mhat / (std::sqrt(vhat) + options_.epsilon);
    }
  }
}

Sgd::Sgd(std::vector<Parameter*> params, float learning_rate, float momentum)
    : params_(std::move(params)),
      learning_rate_(learning_rate),
      momentum_(momentum) {
  velocity_.reserve(params_.size());
  for (Parameter* p : params_) {
    TASTI_CHECK(p != nullptr, "Sgd given null parameter");
    velocity_.emplace_back(p->value.rows(), p->value.cols());
  }
}

void Sgd::Step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    Parameter* p = params_[i];
    float* w = p->value.data();
    const float* g = p->grad.data();
    float* vel = velocity_[i].data();
    for (size_t j = 0; j < p->value.size(); ++j) {
      vel[j] = momentum_ * vel[j] - learning_rate_ * g[j];
      w[j] += vel[j];
    }
  }
}

}  // namespace tasti::nn
