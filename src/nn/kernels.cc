#include "nn/kernels.h"

#include <algorithm>

#include "obs/metrics.h"
#include "util/status.h"

namespace tasti::nn {

namespace {

/// Accumulator lanes for the depth reduction in the one-to-many kernel.
/// Sixteen independent partial sums break the loop-carried add chain into
/// four vector chains — enough in-flight adds to hide FP add latency —
/// and the fixed-trip inner loop vectorizes without -ffast-math.
constexpr size_t kLanes = 16;

/// Force-inlined: at d = 64 the call overhead (prologue plus zeroing and
/// spilling the 16-float accumulator array through the stack) costs about
/// as much as the distance arithmetic itself, and GCC declines to inline
/// this on its own.
#if defined(__GNUC__)
__attribute__((always_inline))
#endif
inline float SquaredDistanceFlat(const float* x, const float* y, size_t d) {
  float acc[kLanes] = {0.0f};
  size_t p = 0;
  for (; p + kLanes <= d; p += kLanes) {
    for (size_t u = 0; u < kLanes; ++u) {
      const float diff = x[p + u] - y[p + u];
      acc[u] += diff * diff;
    }
  }
  float tail = 0.0f;
  for (; p < d; ++p) {
    const float diff = x[p] - y[p];
    tail += diff * diff;
  }
  // Fixed-shape pairwise combine keeps the final sum order deterministic.
  for (size_t width = kLanes / 2; width > 0; width /= 2) {
    for (size_t u = 0; u < width; ++u) acc[u] += acc[u + width];
  }
  return acc[0] + tail;
}

}  // namespace

std::vector<float> RowSquaredNorms(const Matrix& m) {
  std::vector<float> norms(m.rows());
  for (size_t r = 0; r < m.rows(); ++r) norms[r] = RowSquaredNorm(m, r);
  return norms;
}

float RowSquaredNorm(const Matrix& m, size_t row) {
  const float* x = m.Row(row);
  float acc = 0.0f;
  for (size_t p = 0; p < m.cols(); ++p) acc += x[p] * x[p];
  return acc;
}

void PackedBlock::Pack(const Matrix& reps, size_t row_begin, size_t row_end) {
  TASTI_CHECK(row_begin <= row_end && row_end <= reps.rows(),
              "PackedBlock row range out of bounds");
  row_begin_ = row_begin;
  rows_ = row_end - row_begin;
  dim_ = reps.cols();
  packed_.assign(dim_ * rows_, 0.0f);
  norms_.assign(rows_, 0.0f);
  for (size_t j = 0; j < rows_; ++j) {
    const float* src = reps.Row(row_begin + j);
    for (size_t p = 0; p < dim_; ++p) packed_[p * rows_ + j] = src[p];
    norms_[j] = RowSquaredNorm(reps, row_begin + j);
  }
}

std::vector<PackedBlock> PackBlocks(const Matrix& reps, size_t block_rows) {
  TASTI_CHECK(block_rows > 0, "PackBlocks requires a positive block size");
  // Coarse counters only at kernel entry points that amortize over many
  // rows; the per-row inner kernels (DotBatch, SquaredDistanceBatch) stay
  // uninstrumented so the disabled path adds nothing measurable.
  if (obs::MetricsEnabled()) {
    static obs::Counter* const calls =
        obs::MetricsRegistry::Global().counter("kernels.pack_blocks.calls",
                                               "calls");
    static obs::Counter* const rows =
        obs::MetricsRegistry::Global().counter("kernels.pack_blocks.rows",
                                               "rows");
    calls->Increment();
    rows->Increment(reps.rows());
  }
  std::vector<PackedBlock> blocks;
  blocks.reserve((reps.rows() + block_rows - 1) / block_rows);
  for (size_t lo = 0; lo < reps.rows(); lo += block_rows) {
    blocks.emplace_back();
    blocks.back().Pack(reps, lo, std::min(reps.rows(), lo + block_rows));
  }
  return blocks;
}

void DotBatch(const Matrix& points, size_t point_row, const PackedBlock& block,
              float* out) {
  TASTI_CHECK(points.cols() == block.dim(), "DotBatch dimension mismatch");
  const size_t nb = block.rows();
  const size_t d = block.dim();
  const float* x = points.Row(point_row);
  const float* pk = block.packed();
  // Register blocking: a fixed 16-wide column tile keeps the partial sums
  // in vector registers across the whole depth loop instead of spilling
  // `out` every step; the fully-unrolled inner loop vectorizes. Each
  // output still accumulates sequentially over p.
  constexpr size_t kJTile = 16;
  size_t j0 = 0;
  for (; j0 + kJTile <= nb; j0 += kJTile) {
    float acc[kJTile] = {0.0f};
    const float* tile = pk + j0;
    for (size_t p = 0; p < d; ++p) {
      const float xv = x[p];
      const float* row = tile + p * nb;
      for (size_t u = 0; u < kJTile; ++u) acc[u] += xv * row[u];
    }
    for (size_t u = 0; u < kJTile; ++u) out[j0 + u] = acc[u];
  }
  if (j0 < nb) {
    for (size_t j = j0; j < nb; ++j) out[j] = 0.0f;
    for (size_t p = 0; p < d; ++p) {
      const float xv = x[p];
      const float* row = pk + p * nb;
      for (size_t j = j0; j < nb; ++j) out[j] += xv * row[j];
    }
  }
}

void SquaredDistanceBatch(const Matrix& points, size_t point_row,
                          float point_norm, const PackedBlock& block,
                          float* out) {
  const size_t nb = block.rows();
  if (nb == 0) return;
  DotBatch(points, point_row, block, out);
  const float* norms = block.norms();
  for (size_t j = 0; j < nb; ++j) {
    const float d2 = point_norm + norms[j] - 2.0f * out[j];
    out[j] = d2 > 0.0f ? d2 : 0.0f;
  }
}

void SquaredDistanceBatch(const Matrix& points, size_t point_row,
                          const PackedBlock& block, float* out) {
  SquaredDistanceBatch(points, point_row, RowSquaredNorm(points, point_row),
                       block, out);
}

void SquaredDistanceOneToMany(const Matrix& m, size_t lo, size_t hi,
                              const float* y, float* out) {
  TASTI_CHECK(lo <= hi && hi <= m.rows(), "OneToMany row range out of bounds");
  if (obs::MetricsEnabled()) {
    static obs::Counter* const rows =
        obs::MetricsRegistry::Global().counter("kernels.one_to_many.rows",
                                               "rows");
    rows->Increment(hi - lo);
  }
  const size_t d = m.cols();
  for (size_t i = lo; i < hi; ++i) {
    out[i - lo] = SquaredDistanceFlat(m.Row(i), y, d);
  }
}

void SquaredDistanceOneToMany(const Matrix& m, size_t lo, size_t hi,
                              const Matrix& centers, size_t c, float* out) {
  TASTI_CHECK(m.cols() == centers.cols(), "OneToMany dimension mismatch");
  SquaredDistanceOneToMany(m, lo, hi, centers.Row(c), out);
}

void SquaredDistanceGather(const Matrix& queries, size_t query_row,
                           const Matrix& reps, const uint32_t* ids,
                           size_t count, float* out) {
  TASTI_CHECK(queries.cols() == reps.cols(), "Gather dimension mismatch");
  if (obs::MetricsEnabled()) {
    static obs::Counter* const rows =
        obs::MetricsRegistry::Global().counter("kernels.gather.rows", "rows");
    rows->Increment(count);
  }
  const float* q = queries.Row(query_row);
  const size_t d = reps.cols();
  for (size_t t = 0; t < count; ++t) {
    out[t] = SquaredDistanceFlat(q, reps.Row(ids[t]), d);
  }
}

void GemmBTBlocked(const Matrix& a, const Matrix& b, Matrix* c) {
  TASTI_CHECK(a.cols() == b.cols(), "GemmBT inner dimension mismatch");
  const size_t m = a.rows(), n = b.rows();
  if (obs::MetricsEnabled()) {
    static obs::Counter* const calls =
        obs::MetricsRegistry::Global().counter("kernels.gemmbt.calls", "calls");
    static obs::Counter* const cells =
        obs::MetricsRegistry::Global().counter("kernels.gemmbt.cells", "cells");
    calls->Increment();
    cells->Increment(static_cast<uint64_t>(m) * n);
  }
  if (c->rows() != m || c->cols() != n) *c = Matrix(m, n);
  const std::vector<PackedBlock> blocks = PackBlocks(b);
  for (const PackedBlock& block : blocks) {
    for (size_t i = 0; i < m; ++i) {
      DotBatch(a, i, block, c->Row(i) + block.row_begin());
    }
  }
}

}  // namespace tasti::nn
