#include "nn/triplet.h"

#include <algorithm>
#include <cmath>

#include "util/status.h"

namespace tasti::nn {

namespace {
constexpr float kDistanceFloor = 1e-8f;
}

TripletLossResult TripletLoss(const Matrix& anchor, const Matrix& positive,
                              const Matrix& negative, float margin) {
  TASTI_CHECK(anchor.rows() == positive.rows() && anchor.rows() == negative.rows(),
              "triplet batch size mismatch");
  TASTI_CHECK(anchor.cols() == positive.cols() && anchor.cols() == negative.cols(),
              "triplet dim mismatch");
  TASTI_CHECK(margin > 0.0f, "triplet margin must be positive");

  const size_t batch = anchor.rows();
  const size_t dim = anchor.cols();
  TripletLossResult result;
  result.grad_anchor = Matrix(batch, dim);
  result.grad_positive = Matrix(batch, dim);
  result.grad_negative = Matrix(batch, dim);
  if (batch == 0) return result;

  double total_loss = 0.0;
  size_t active = 0;
  const float inv_batch = 1.0f / static_cast<float>(batch);

  for (size_t i = 0; i < batch; ++i) {
    const float dp = std::max(Distance(anchor, i, positive, i), kDistanceFloor);
    const float dn = std::max(Distance(anchor, i, negative, i), kDistanceFloor);
    const float hinge = margin + dp - dn;
    if (hinge <= 0.0f) continue;
    total_loss += hinge;
    ++active;
    // d|a-p|/da = (a-p)/|a-p|; d|a-n|/da = (a-n)/|a-n|.
    const float* a = anchor.Row(i);
    const float* p = positive.Row(i);
    const float* n = negative.Row(i);
    float* ga = result.grad_anchor.Row(i);
    float* gp = result.grad_positive.Row(i);
    float* gn = result.grad_negative.Row(i);
    for (size_t c = 0; c < dim; ++c) {
      const float up = (a[c] - p[c]) / dp;
      const float un = (a[c] - n[c]) / dn;
      ga[c] = (up - un) * inv_batch;
      gp[c] = -up * inv_batch;
      gn[c] = un * inv_batch;
    }
  }

  result.loss = total_loss / static_cast<double>(batch);
  result.active_fraction = static_cast<double>(active) / static_cast<double>(batch);
  return result;
}

double TripletLossValue(const Matrix& anchor, const Matrix& positive,
                        const Matrix& negative, float margin) {
  TASTI_CHECK(anchor.rows() == positive.rows() && anchor.rows() == negative.rows(),
              "triplet batch size mismatch");
  if (anchor.rows() == 0) return 0.0;
  double total = 0.0;
  for (size_t i = 0; i < anchor.rows(); ++i) {
    const float dp = Distance(anchor, i, positive, i);
    const float dn = Distance(anchor, i, negative, i);
    total += std::max(0.0f, margin + dp - dn);
  }
  return total / static_cast<double>(anchor.rows());
}

}  // namespace tasti::nn
