#ifndef TASTI_NN_KERNELS_H_
#define TASTI_NN_KERNELS_H_

/// \file kernels.h
/// Batched, cache-blocked distance kernels.
///
/// Index construction is dominated by all-records x all-representatives
/// distance computations (top-k, FPF, IVF assignment, k-means, PQ
/// codebooks). The scalar one-pair-at-a-time loops in matrix.cc are
/// latency-bound: a float reduction is a dependent add chain the compiler
/// may not reassociate. The kernels here restructure the work so the hot
/// inner loops carry no loop-carried dependence and auto-vectorize:
///
///  * Many-representative batches use the dot-trick
///    `d2(x, y) = |x|^2 + |y|^2 - 2 x.y` over a register-blocked GEMM with
///    cached per-row norms, clamped at zero (the subtraction can go
///    slightly negative for near-duplicate rows).
///  * One-center batches (FPF relax, cracking updates, PQ codebook scans)
///    keep the cancellation-free `(x - y)^2` form but split the depth
///    reduction across independent accumulator lanes.
///
/// All kernels accumulate each output element sequentially over the depth
/// dimension, so results are deterministic and independent of threading.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "nn/matrix.h"

namespace tasti::nn {

/// Default number of representative rows per packed tile. 64 rows x 64
/// dims x 4 bytes = 16 KiB: the tile stays L1-resident while a chunk of
/// records streams against it.
inline constexpr size_t kDistanceBlockRows = 64;

/// Per-row squared L2 norms, accumulated sequentially per row (the same
/// order the blocked GEMM uses along depth, so `d2(x, x)` cancels to zero
/// exactly for bitwise-identical rows).
std::vector<float> RowSquaredNorms(const Matrix& m);

/// Squared L2 norm of one row of `m`.
float RowSquaredNorm(const Matrix& m, size_t row);

/// A tile of representative rows packed depth-major (dim x rows) so the
/// batched kernels stream it with unit stride, plus cached squared norms.
class PackedBlock {
 public:
  PackedBlock() = default;

  /// Packs rows [row_begin, row_end) of `reps`.
  void Pack(const Matrix& reps, size_t row_begin, size_t row_end);

  size_t rows() const { return rows_; }
  size_t row_begin() const { return row_begin_; }
  size_t dim() const { return dim_; }
  bool empty() const { return rows_ == 0; }
  /// Depth-major data: element (p, j) = reps(row_begin + j, p) sits at
  /// p * rows() + j.
  const float* packed() const { return packed_.data(); }
  const float* norms() const { return norms_.data(); }

 private:
  size_t row_begin_ = 0;
  size_t rows_ = 0;
  size_t dim_ = 0;
  std::vector<float> packed_;
  std::vector<float> norms_;
};

/// Splits the rows of `reps` into consecutive packed tiles of at most
/// `block_rows` rows each.
std::vector<PackedBlock> PackBlocks(const Matrix& reps,
                                    size_t block_rows = kDistanceBlockRows);

/// Dot products of row `point_row` of `points` against every row of the
/// block: out[j] = points[point_row] . block_row_j. The j loop is unit
/// stride over the packed tile and carries no dependence, so it
/// vectorizes; the depth accumulation stays sequential per output.
void DotBatch(const Matrix& points, size_t point_row, const PackedBlock& block,
              float* out);

/// Batched squared distances via the dot-trick with a clamp at zero:
/// out[j] = max(0, point_norm + block_norm_j - 2 * dot_j) for every row j
/// of the block. `point_norm` must be RowSquaredNorm(points, point_row).
void SquaredDistanceBatch(const Matrix& points, size_t point_row,
                          float point_norm, const PackedBlock& block,
                          float* out);

/// Convenience overload that computes the point norm itself.
void SquaredDistanceBatch(const Matrix& points, size_t point_row,
                          const PackedBlock& block, float* out);

/// Cancellation-free one-to-many: out[i - lo] = |m_i - y|^2 for rows
/// [lo, hi) of `m`; `y` holds m.cols() floats. Used where a single vector
/// is compared against many rows (FPF relax, cracking updates, centroid
/// routing, PQ codebook scans) and the dot-trick has no reuse to exploit.
void SquaredDistanceOneToMany(const Matrix& m, size_t lo, size_t hi,
                              const float* y, float* out);

/// Overload: y = centers row `c`.
void SquaredDistanceOneToMany(const Matrix& m, size_t lo, size_t hi,
                              const Matrix& centers, size_t c, float* out);

/// Gathered variant for IVF probe lists: out[t] = |q - reps[ids[t]]|^2
/// where q = queries row `query_row`.
void SquaredDistanceGather(const Matrix& queries, size_t query_row,
                           const Matrix& reps, const uint32_t* ids,
                           size_t count, float* out);

/// Register-blocked C = A * B^T (same contract as GemmBT): B is packed
/// into depth-major tiles once and every row of A streams against each
/// tile while it is cache-hot.
void GemmBTBlocked(const Matrix& a, const Matrix& b, Matrix* c);

}  // namespace tasti::nn

#endif  // TASTI_NN_KERNELS_H_
