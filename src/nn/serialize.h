#ifndef TASTI_NN_SERIALIZE_H_
#define TASTI_NN_SERIALIZE_H_

/// \file serialize.h
/// Binary (de)serialization of MLPs, so a trained embedding network can be
/// persisted with its index and reused to embed new records (streaming
/// ingestion) without retraining.

#include <string>

#include "nn/mlp.h"
#include "util/status.h"

namespace tasti::nn {

/// Serializes the architecture and weights of an MLP, with an integrity
/// footer (util/checksum.h). Fails on an unserializable layer type instead
/// of aborting.
Result<std::string> SerializeMlp(const Mlp& mlp);

/// Parses an MLP previously produced by SerializeMlp. The integrity footer
/// is verified first, so truncated or bit-flipped buffers fail cleanly.
Result<Mlp> DeserializeMlp(const std::string& buffer);

}  // namespace tasti::nn

#endif  // TASTI_NN_SERIALIZE_H_
