#include "nn/mlp.h"

#include <cmath>

namespace tasti::nn {

void Mlp::Append(std::unique_ptr<Layer> layer) { layers_.push_back(std::move(layer)); }

Matrix Mlp::Forward(const Matrix& input) {
  Matrix x = input;
  for (auto& layer : layers_) x = layer->Forward(x);
  return x;
}

Matrix Mlp::Backward(const Matrix& grad_output) {
  Matrix g = grad_output;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    g = (*it)->Backward(g);
  }
  return g;
}

namespace {
// Stateless re-implementation of each layer's forward pass, used for
// thread-safe inference (Layer::Forward mutates caches).
Matrix InferLayer(const Layer& layer, const Matrix& input) {
  const std::string name = layer.Name();
  if (name == "Linear") {
    const auto& lin = static_cast<const Linear&>(layer);
    Matrix out;
    Gemm(input, const_cast<Linear&>(lin).weight().value, &out);
    const float* b = const_cast<Linear&>(lin).bias().value.Row(0);
    for (size_t r = 0; r < out.rows(); ++r) {
      float* row = out.Row(r);
      for (size_t c = 0; c < out.cols(); ++c) row[c] += b[c];
    }
    return out;
  }
  if (name == "ReLU") {
    Matrix out = input;
    for (size_t i = 0; i < out.size(); ++i) {
      if (out.data()[i] < 0.0f) out.data()[i] = 0.0f;
    }
    return out;
  }
  if (name == "Tanh") {
    Matrix out = input;
    for (size_t i = 0; i < out.size(); ++i) out.data()[i] = std::tanh(out.data()[i]);
    return out;
  }
  if (name == "L2Normalize") {
    Matrix out = input;
    for (size_t r = 0; r < out.rows(); ++r) {
      float* x = out.Row(r);
      float norm2 = 0.0f;
      for (size_t c = 0; c < out.cols(); ++c) norm2 += x[c] * x[c];
      const float norm = std::max(std::sqrt(norm2), 1e-8f);
      for (size_t c = 0; c < out.cols(); ++c) x[c] /= norm;
    }
    return out;
  }
  TASTI_CHECK(false, "unknown layer in InferLayer: " + name);
  return input;
}
}  // namespace

Matrix Mlp::Infer(const Matrix& input) const {
  Matrix x = input;
  for (const auto& layer : layers_) x = InferLayer(*layer, x);
  return x;
}

std::vector<Parameter*> Mlp::Params() {
  std::vector<Parameter*> out;
  for (auto& layer : layers_) {
    for (Parameter* p : layer->Params()) out.push_back(p);
  }
  return out;
}

void Mlp::ZeroGrad() {
  for (Parameter* p : Params()) p->ZeroGrad();
}

Mlp Mlp::Clone() const {
  Mlp copy;
  Rng dummy(0);
  for (const auto& layer : layers_) {
    const std::string name = layer->Name();
    if (name == "Linear") {
      const auto& lin = static_cast<const Linear&>(*layer);
      auto fresh = std::make_unique<Linear>(lin.in_dim(), lin.out_dim(), &dummy);
      fresh->weight().value = const_cast<Linear&>(lin).weight().value;
      fresh->bias().value = const_cast<Linear&>(lin).bias().value;
      copy.Append(std::move(fresh));
    } else if (name == "ReLU") {
      copy.Append(std::make_unique<ReLU>());
    } else if (name == "Tanh") {
      copy.Append(std::make_unique<Tanh>());
    } else if (name == "L2Normalize") {
      copy.Append(std::make_unique<L2Normalize>());
    } else {
      TASTI_CHECK(false, "unknown layer in Clone: " + name);
    }
  }
  return copy;
}

Mlp Mlp::MakeEmbeddingNet(size_t in_dim, size_t hidden_dim, size_t out_dim,
                          Rng* rng) {
  Mlp net;
  net.Append(std::make_unique<Linear>(in_dim, hidden_dim, rng));
  net.Append(std::make_unique<ReLU>());
  net.Append(std::make_unique<Linear>(hidden_dim, out_dim, rng));
  net.Append(std::make_unique<L2Normalize>());
  return net;
}

Mlp Mlp::MakeProxyNet(size_t in_dim, size_t hidden_dim, Rng* rng) {
  Mlp net;
  net.Append(std::make_unique<Linear>(in_dim, hidden_dim, rng));
  net.Append(std::make_unique<ReLU>());
  net.Append(std::make_unique<Linear>(hidden_dim, 1, rng));
  return net;
}

}  // namespace tasti::nn
