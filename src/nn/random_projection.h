#ifndef TASTI_NN_RANDOM_PROJECTION_H_
#define TASTI_NN_RANDOM_PROJECTION_H_

/// \file random_projection.h
/// Frozen random-feature map used as the "pretrained" embedding.
///
/// The paper's TASTI-PT variant uses a generic pretrained DNN (ImageNet
/// ResNet, BERT) whose embeddings are semantically meaningful but not
/// adapted to the induced schema. Our stand-in is a fixed random nonlinear
/// projection y = tanh(Wx + b): it preserves coarse geometry of the input
/// features (so it is usable) but cannot suppress nuisance dimensions (so a
/// triplet-trained network beats it, as in the paper).

#include <cstddef>

#include "nn/matrix.h"
#include "util/random.h"

namespace tasti::nn {

/// Immutable random nonlinear projection.
class RandomProjection {
 public:
  /// Draws a fixed W (in_dim x out_dim, N(0, 1/sqrt(in_dim))) and b from
  /// `seed`. Equal seeds give identical maps.
  RandomProjection(size_t in_dim, size_t out_dim, uint64_t seed);

  /// Applies the map row-wise: out[r] = tanh(W^T x[r] + b).
  Matrix Apply(const Matrix& input) const;

  size_t in_dim() const { return in_dim_; }
  size_t out_dim() const { return out_dim_; }

 private:
  size_t in_dim_;
  size_t out_dim_;
  Matrix weight_;  // in_dim x out_dim
  Matrix bias_;    // 1 x out_dim
};

}  // namespace tasti::nn

#endif  // TASTI_NN_RANDOM_PROJECTION_H_
