#ifndef TASTI_NN_OPTIMIZER_H_
#define TASTI_NN_OPTIMIZER_H_

/// \file optimizer.h
/// First-order optimizers for the embedding and proxy networks.

#include <vector>

#include "nn/layers.h"

namespace tasti::nn {

/// Adam (Kingma & Ba 2015) over a fixed parameter list.
///
/// The parameter list is captured at construction; Step() applies one update
/// using whatever gradients have been accumulated since the last ZeroGrad.
class Adam {
 public:
  struct Options {
    float learning_rate = 1e-3f;
    float beta1 = 0.9f;
    float beta2 = 0.999f;
    float epsilon = 1e-8f;
    float weight_decay = 0.0f;
  };

  Adam(std::vector<Parameter*> params, Options options);

  /// Applies one Adam update to every parameter.
  void Step();

  /// Number of steps applied so far.
  size_t step_count() const { return t_; }

  Options& options() { return options_; }

 private:
  std::vector<Parameter*> params_;
  Options options_;
  std::vector<Matrix> m_;  // first moments, aligned with params_
  std::vector<Matrix> v_;  // second moments
  size_t t_ = 0;
};

/// Plain SGD with optional momentum; used in tests as a reference optimizer.
class Sgd {
 public:
  Sgd(std::vector<Parameter*> params, float learning_rate, float momentum = 0.0f);

  void Step();

 private:
  std::vector<Parameter*> params_;
  float learning_rate_;
  float momentum_;
  std::vector<Matrix> velocity_;
};

}  // namespace tasti::nn

#endif  // TASTI_NN_OPTIMIZER_H_
