#ifndef TASTI_NN_LAYERS_H_
#define TASTI_NN_LAYERS_H_

/// \file layers.h
/// Differentiable layers with manual backpropagation.
///
/// The embedding DNN is a small MLP, so the layer zoo is deliberately tiny:
/// Linear, ReLU, Tanh, and row-wise L2 normalization (common as the final
/// layer of triplet-trained embedding networks). Each layer caches its
/// forward activations; Backward must be called with the most recent
/// forward's batch.

#include <memory>
#include <string>
#include <vector>

#include "nn/matrix.h"
#include "util/random.h"

namespace tasti::nn {

/// A trainable parameter: a value matrix plus its gradient accumulator.
struct Parameter {
  Matrix value;
  Matrix grad;

  Parameter() = default;
  Parameter(size_t rows, size_t cols) : value(rows, cols), grad(rows, cols) {}

  void ZeroGrad() { grad.Fill(0.0f); }
};

/// Base class for layers. Forward caches whatever Backward needs.
class Layer {
 public:
  virtual ~Layer() = default;

  /// Computes the layer output for a batch (rows = examples).
  virtual Matrix Forward(const Matrix& input) = 0;

  /// Given dLoss/dOutput for the most recent Forward batch, accumulates
  /// parameter gradients and returns dLoss/dInput.
  virtual Matrix Backward(const Matrix& grad_output) = 0;

  /// Trainable parameters (empty for activations).
  virtual std::vector<Parameter*> Params() { return {}; }

  /// Layer name for serialization and debugging.
  virtual std::string Name() const = 0;

  /// Output width given an input width.
  virtual size_t OutputDim(size_t input_dim) const = 0;
};

/// Fully connected layer: Y = X W + b.
class Linear : public Layer {
 public:
  /// Initializes with He-uniform weights drawn from `rng`.
  Linear(size_t in_dim, size_t out_dim, Rng* rng);

  Matrix Forward(const Matrix& input) override;
  Matrix Backward(const Matrix& grad_output) override;
  std::vector<Parameter*> Params() override { return {&weight_, &bias_}; }
  std::string Name() const override { return "Linear"; }
  size_t OutputDim(size_t) const override { return out_dim_; }

  size_t in_dim() const { return in_dim_; }
  size_t out_dim() const { return out_dim_; }
  Parameter& weight() { return weight_; }
  Parameter& bias() { return bias_; }

 private:
  size_t in_dim_;
  size_t out_dim_;
  Parameter weight_;  // in_dim x out_dim
  Parameter bias_;    // 1 x out_dim
  Matrix cached_input_;
};

/// Rectified linear activation.
class ReLU : public Layer {
 public:
  Matrix Forward(const Matrix& input) override;
  Matrix Backward(const Matrix& grad_output) override;
  std::string Name() const override { return "ReLU"; }
  size_t OutputDim(size_t input_dim) const override { return input_dim; }

 private:
  Matrix cached_output_;
};

/// Hyperbolic tangent activation.
class Tanh : public Layer {
 public:
  Matrix Forward(const Matrix& input) override;
  Matrix Backward(const Matrix& grad_output) override;
  std::string Name() const override { return "Tanh"; }
  size_t OutputDim(size_t input_dim) const override { return input_dim; }

 private:
  Matrix cached_output_;
};

/// Row-wise L2 normalization: y = x / max(||x||, eps).
class L2Normalize : public Layer {
 public:
  explicit L2Normalize(float eps = 1e-8f) : eps_(eps) {}

  Matrix Forward(const Matrix& input) override;
  Matrix Backward(const Matrix& grad_output) override;
  std::string Name() const override { return "L2Normalize"; }
  size_t OutputDim(size_t input_dim) const override { return input_dim; }

 private:
  float eps_;
  Matrix cached_output_;
  std::vector<float> cached_norms_;
};

}  // namespace tasti::nn

#endif  // TASTI_NN_LAYERS_H_
