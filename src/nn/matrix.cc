#include "nn/matrix.h"

#include <algorithm>
#include <cmath>

#include "nn/kernels.h"
#include "util/status.h"

namespace tasti::nn {

void Matrix::Fill(float value) { std::fill(data_.begin(), data_.end(), value); }

void Matrix::Add(const Matrix& other) {
  TASTI_CHECK(rows_ == other.rows_ && cols_ == other.cols_,
              "Matrix::Add shape mismatch");
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

void Matrix::Scale(float s) {
  for (auto& x : data_) x *= s;
}

Matrix Matrix::GatherRows(const std::vector<size_t>& indices) const {
  // Reserve once and append via memcpy, coalescing runs of consecutive
  // source rows into one copy; the zero-fill a sized constructor would pay
  // is skipped entirely.
  Matrix out;
  out.cols_ = cols_;
  out.data_.reserve(indices.size() * cols_);
  for (size_t i = 0; i < indices.size();) {
    TASTI_CHECK(indices[i] < rows_, "GatherRows index out of range");
    size_t run = 1;
    while (i + run < indices.size() && indices[i + run] < rows_ &&
           indices[i + run] == indices[i] + run) {
      ++run;
    }
    const float* first = Row(indices[i]);
    out.data_.insert(out.data_.end(), first, first + run * cols_);
    i += run;
  }
  out.rows_ = indices.size();
  return out;
}

void Matrix::AppendRowsFrom(const Matrix& src, const std::vector<size_t>& indices) {
  if (indices.empty()) return;
  TASTI_CHECK(&src != this, "AppendRowsFrom cannot append a matrix to itself");
  if (rows_ == 0 && cols_ == 0) cols_ = src.cols();
  TASTI_CHECK(cols_ == src.cols(), "AppendRowsFrom column mismatch");
  for (size_t i = 0; i < indices.size();) {
    TASTI_CHECK(indices[i] < src.rows(), "AppendRowsFrom index out of range");
    size_t run = 1;
    while (i + run < indices.size() && indices[i + run] < src.rows() &&
           indices[i + run] == indices[i] + run) {
      ++run;
    }
    const float* first = src.Row(indices[i]);
    // vector::insert grows capacity geometrically, giving the amortized
    // O(1)-per-element append AddRepresentative relies on.
    data_.insert(data_.end(), first, first + run * cols_);
    i += run;
  }
  rows_ += indices.size();
}

void Matrix::SetRow(size_t dst_row, const Matrix& src, size_t src_row) {
  TASTI_CHECK(cols_ == src.cols(), "SetRow column mismatch");
  TASTI_CHECK(dst_row < rows_ && src_row < src.rows(), "SetRow row out of range");
  std::copy(src.Row(src_row), src.Row(src_row) + cols_, Row(dst_row));
}

Matrix Matrix::VStack(const std::vector<const Matrix*>& parts) {
  TASTI_CHECK(!parts.empty(), "VStack requires at least one part");
  const size_t cols = parts[0]->cols();
  size_t rows = 0;
  for (const Matrix* p : parts) {
    TASTI_CHECK(p->cols() == cols, "VStack column mismatch");
    rows += p->rows();
  }
  Matrix out(rows, cols);
  size_t at = 0;
  for (const Matrix* p : parts) {
    std::copy(p->data(), p->data() + p->size(), out.Row(at));
    at += p->rows();
  }
  return out;
}

Matrix Matrix::RowSlice(size_t row_begin, size_t row_end) const {
  TASTI_CHECK(row_begin <= row_end && row_end <= rows_, "RowSlice out of range");
  Matrix out(row_end - row_begin, cols_);
  std::copy(Row(row_begin), Row(row_begin) + out.size(), out.data());
  return out;
}

void Gemm(const Matrix& a, const Matrix& b, Matrix* c) {
  TASTI_CHECK(a.cols() == b.rows(), "Gemm inner dimension mismatch");
  const size_t m = a.rows(), k = a.cols(), n = b.cols();
  if (c->rows() != m || c->cols() != n) *c = Matrix(m, n);
  c->Fill(0.0f);
  // i-k-j loop order: unit-stride access on both B and C rows, and the j
  // loop carries no dependence so it vectorizes. (A zero-skip branch here
  // would block vectorization and loses on dense data.)
  for (size_t i = 0; i < m; ++i) {
    const float* arow = a.Row(i);
    float* crow = c->Row(i);
    for (size_t p = 0; p < k; ++p) {
      const float av = arow[p];
      const float* brow = b.Row(p);
      for (size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void GemmBT(const Matrix& a, const Matrix& b, Matrix* c) {
  // Delegates to the register-blocked kernel: B is packed depth-major once
  // and every row of A streams against each cache-hot tile.
  GemmBTBlocked(a, b, c);
}

void GemmATAccum(const Matrix& a, const Matrix& b, Matrix* c) {
  TASTI_CHECK(a.rows() == b.rows(), "GemmATAccum inner dimension mismatch");
  const size_t k = a.rows(), m = a.cols(), n = b.cols();
  TASTI_CHECK(c->rows() == m && c->cols() == n, "GemmATAccum output shape mismatch");
  for (size_t p = 0; p < k; ++p) {
    const float* arow = a.Row(p);
    const float* brow = b.Row(p);
    for (size_t i = 0; i < m; ++i) {
      const float av = arow[i];
      float* crow = c->Row(i);
      for (size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

float SquaredDistance(const Matrix& a, size_t ra, const Matrix& b, size_t rb) {
  TASTI_CHECK(a.cols() == b.cols(), "SquaredDistance column mismatch");
  const float* x = a.Row(ra);
  const float* y = b.Row(rb);
  float acc = 0.0f;
  for (size_t i = 0; i < a.cols(); ++i) {
    const float d = x[i] - y[i];
    acc += d * d;
  }
  return acc;
}

float Distance(const Matrix& a, size_t ra, const Matrix& b, size_t rb) {
  return std::sqrt(SquaredDistance(a, ra, b, rb));
}

float RowDot(const Matrix& a, size_t ra, const Matrix& b, size_t rb) {
  TASTI_CHECK(a.cols() == b.cols(), "RowDot column mismatch");
  const float* x = a.Row(ra);
  const float* y = b.Row(rb);
  float acc = 0.0f;
  for (size_t i = 0; i < a.cols(); ++i) acc += x[i] * y[i];
  return acc;
}

}  // namespace tasti::nn
