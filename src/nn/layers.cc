#include "nn/layers.h"

#include <cmath>

#include "util/status.h"

namespace tasti::nn {

Linear::Linear(size_t in_dim, size_t out_dim, Rng* rng)
    : in_dim_(in_dim),
      out_dim_(out_dim),
      weight_(in_dim, out_dim),
      bias_(1, out_dim) {
  TASTI_CHECK(in_dim > 0 && out_dim > 0, "Linear dims must be positive");
  TASTI_CHECK(rng != nullptr, "Linear requires an RNG");
  // He-uniform initialization, appropriate for ReLU networks.
  const float limit = std::sqrt(6.0f / static_cast<float>(in_dim));
  for (size_t i = 0; i < weight_.value.size(); ++i) {
    weight_.value.data()[i] = static_cast<float>(rng->Uniform(-limit, limit));
  }
  bias_.value.Fill(0.0f);
}

Matrix Linear::Forward(const Matrix& input) {
  TASTI_CHECK(input.cols() == in_dim_, "Linear input width mismatch");
  cached_input_ = input;
  Matrix out;
  Gemm(input, weight_.value, &out);
  for (size_t r = 0; r < out.rows(); ++r) {
    float* row = out.Row(r);
    const float* b = bias_.value.Row(0);
    for (size_t c = 0; c < out_dim_; ++c) row[c] += b[c];
  }
  return out;
}

Matrix Linear::Backward(const Matrix& grad_output) {
  TASTI_CHECK(grad_output.rows() == cached_input_.rows(),
              "Linear backward batch mismatch");
  // dW += X^T G
  GemmATAccum(cached_input_, grad_output, &weight_.grad);
  // db += column sums of G
  for (size_t r = 0; r < grad_output.rows(); ++r) {
    const float* g = grad_output.Row(r);
    float* b = bias_.grad.Row(0);
    for (size_t c = 0; c < out_dim_; ++c) b[c] += g[c];
  }
  // dX = G W^T
  Matrix grad_input;
  GemmBT(grad_output, weight_.value, &grad_input);
  return grad_input;
}

Matrix ReLU::Forward(const Matrix& input) {
  Matrix out = input;
  for (size_t i = 0; i < out.size(); ++i) {
    if (out.data()[i] < 0.0f) out.data()[i] = 0.0f;
  }
  cached_output_ = out;
  return out;
}

Matrix ReLU::Backward(const Matrix& grad_output) {
  TASTI_CHECK(grad_output.rows() == cached_output_.rows() &&
                  grad_output.cols() == cached_output_.cols(),
              "ReLU backward shape mismatch");
  Matrix grad_input = grad_output;
  for (size_t i = 0; i < grad_input.size(); ++i) {
    if (cached_output_.data()[i] <= 0.0f) grad_input.data()[i] = 0.0f;
  }
  return grad_input;
}

Matrix Tanh::Forward(const Matrix& input) {
  Matrix out = input;
  for (size_t i = 0; i < out.size(); ++i) out.data()[i] = std::tanh(out.data()[i]);
  cached_output_ = out;
  return out;
}

Matrix Tanh::Backward(const Matrix& grad_output) {
  TASTI_CHECK(grad_output.rows() == cached_output_.rows() &&
                  grad_output.cols() == cached_output_.cols(),
              "Tanh backward shape mismatch");
  Matrix grad_input = grad_output;
  for (size_t i = 0; i < grad_input.size(); ++i) {
    const float y = cached_output_.data()[i];
    grad_input.data()[i] *= (1.0f - y * y);
  }
  return grad_input;
}

Matrix L2Normalize::Forward(const Matrix& input) {
  Matrix out = input;
  cached_norms_.assign(input.rows(), 0.0f);
  for (size_t r = 0; r < input.rows(); ++r) {
    const float* x = input.Row(r);
    float norm2 = 0.0f;
    for (size_t c = 0; c < input.cols(); ++c) norm2 += x[c] * x[c];
    const float norm = std::max(std::sqrt(norm2), eps_);
    cached_norms_[r] = norm;
    float* y = out.Row(r);
    for (size_t c = 0; c < input.cols(); ++c) y[c] = x[c] / norm;
  }
  cached_output_ = out;
  return out;
}

Matrix L2Normalize::Backward(const Matrix& grad_output) {
  TASTI_CHECK(grad_output.rows() == cached_output_.rows() &&
                  grad_output.cols() == cached_output_.cols(),
              "L2Normalize backward shape mismatch");
  // For y = x / ||x||: dL/dx = (g - y (y . g)) / ||x||.
  Matrix grad_input = grad_output;
  for (size_t r = 0; r < grad_output.rows(); ++r) {
    const float* g = grad_output.Row(r);
    const float* y = cached_output_.Row(r);
    float dot = 0.0f;
    for (size_t c = 0; c < grad_output.cols(); ++c) dot += g[c] * y[c];
    float* gi = grad_input.Row(r);
    const float inv_norm = 1.0f / cached_norms_[r];
    for (size_t c = 0; c < grad_output.cols(); ++c) {
      gi[c] = (g[c] - y[c] * dot) * inv_norm;
    }
  }
  return grad_input;
}

}  // namespace tasti::nn
