#ifndef TASTI_NN_MATRIX_H_
#define TASTI_NN_MATRIX_H_

/// \file matrix.h
/// Minimal row-major dense float matrix used by the embedding DNN and all
/// distance computations. This is the only numeric container in the
/// library; records-by-features and records-by-embedding-dims matrices are
/// both Matrix instances.

#include <cstddef>
#include <vector>

namespace tasti::nn {

/// Row-major dense matrix of float.
class Matrix {
 public:
  /// Empty 0x0 matrix.
  Matrix() : rows_(0), cols_(0) {}

  /// rows x cols matrix initialized to `fill`.
  Matrix(size_t rows, size_t cols, float fill = 0.0f)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  /// Rows this matrix can grow to before AppendRowsFrom reallocates.
  /// Exposed so growth amortization is testable (capacity probe).
  size_t row_capacity() const {
    return cols_ == 0 ? 0 : data_.capacity() / cols_;
  }

  /// Pre-allocates storage for `rows` total rows without changing shape.
  void ReserveRows(size_t rows) { data_.reserve(rows * cols_); }

  float& At(size_t r, size_t c) { return data_[r * cols_ + c]; }
  float At(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  /// Pointer to the start of row r.
  float* Row(size_t r) { return data_.data() + r * cols_; }
  const float* Row(size_t r) const { return data_.data() + r * cols_; }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  /// Sets every element to `value`.
  void Fill(float value);

  /// Element-wise in-place addition; shapes must match.
  void Add(const Matrix& other);

  /// In-place multiplication by a scalar.
  void Scale(float s);

  /// Returns a new matrix whose rows are the given subset of this one.
  Matrix GatherRows(const std::vector<size_t>& indices) const;

  /// Appends the given rows of `src` to this matrix in place. Storage
  /// grows geometrically (std::vector), so P single-row appends cost
  /// amortized O(rows copied), not P full-matrix copies. An empty matrix
  /// adopts src's column count.
  void AppendRowsFrom(const Matrix& src, const std::vector<size_t>& indices);

  /// Copies the 1 x cols row `src_row` of `src` into row `dst_row`.
  void SetRow(size_t dst_row, const Matrix& src, size_t src_row);

  /// Stacks matrices vertically; all inputs must share a column count.
  static Matrix VStack(const std::vector<const Matrix*>& parts);

  /// Returns the [row_begin, row_end) horizontal slice as a copy.
  Matrix RowSlice(size_t row_begin, size_t row_end) const;

 private:
  size_t rows_;
  size_t cols_;
  std::vector<float> data_;
};

/// C = A * B. A is m x k, B is k x n, C is m x n (overwritten).
void Gemm(const Matrix& a, const Matrix& b, Matrix* c);

/// C = A * B^T. A is m x k, B is n x k, C is m x n (overwritten).
void GemmBT(const Matrix& a, const Matrix& b, Matrix* c);

/// C += A^T * B. A is k x m, B is k x n, C is m x n (accumulated).
void GemmATAccum(const Matrix& a, const Matrix& b, Matrix* c);

/// Squared Euclidean distance between row `ra` of a and row `rb` of b.
/// The two matrices must have the same column count.
float SquaredDistance(const Matrix& a, size_t ra, const Matrix& b, size_t rb);

/// Euclidean distance between two rows (sqrt of SquaredDistance).
float Distance(const Matrix& a, size_t ra, const Matrix& b, size_t rb);

/// Dot product of two rows.
float RowDot(const Matrix& a, size_t ra, const Matrix& b, size_t rb);

}  // namespace tasti::nn

#endif  // TASTI_NN_MATRIX_H_
