#include "nn/serialize.h"

#include <cstdint>
#include <cstring>

#include "util/checksum.h"

namespace tasti::nn {

namespace {

constexpr uint32_t kMagic = 0x4D4C5054;  // "MLPT"

enum class LayerTag : uint8_t {
  kLinear = 0,
  kReLU = 1,
  kTanh = 2,
  kL2Normalize = 3,
};

template <typename T>
void Put(std::string* out, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>, "Put requires POD");
  out->append(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool Get(const std::string& in, size_t* at, T* value) {
  if (*at + sizeof(T) > in.size()) return false;
  std::memcpy(value, in.data() + *at, sizeof(T));
  *at += sizeof(T);
  return true;
}

void PutMatrix(std::string* out, const Matrix& m) {
  Put<uint64_t>(out, m.rows());
  Put<uint64_t>(out, m.cols());
  out->append(reinterpret_cast<const char*>(m.data()), m.size() * sizeof(float));
}

bool GetMatrix(const std::string& in, size_t* at, Matrix* m) {
  uint64_t rows = 0, cols = 0;
  if (!Get(in, at, &rows) || !Get(in, at, &cols)) return false;
  const size_t bytes = static_cast<size_t>(rows * cols) * sizeof(float);
  if (*at + bytes > in.size()) return false;
  *m = Matrix(rows, cols);
  std::memcpy(m->data(), in.data() + *at, bytes);
  *at += bytes;
  return true;
}

}  // namespace

Result<std::string> SerializeMlp(const Mlp& mlp) {
  std::string out;
  Put<uint32_t>(&out, kMagic);
  Put<uint32_t>(&out, static_cast<uint32_t>(mlp.num_layers()));
  Status layer_status = Status::OK();
  mlp.VisitLayers([&out, &layer_status](const Layer& layer) {
    if (!layer_status.ok()) return;
    const std::string name = layer.Name();
    if (name == "Linear") {
      const auto& lin = static_cast<const Linear&>(layer);
      Put<uint8_t>(&out, static_cast<uint8_t>(LayerTag::kLinear));
      PutMatrix(&out, const_cast<Linear&>(lin).weight().value);
      PutMatrix(&out, const_cast<Linear&>(lin).bias().value);
    } else if (name == "ReLU") {
      Put<uint8_t>(&out, static_cast<uint8_t>(LayerTag::kReLU));
    } else if (name == "Tanh") {
      Put<uint8_t>(&out, static_cast<uint8_t>(LayerTag::kTanh));
    } else if (name == "L2Normalize") {
      Put<uint8_t>(&out, static_cast<uint8_t>(LayerTag::kL2Normalize));
    } else {
      layer_status =
          Status::InvalidArgument("unknown layer in SerializeMlp: " + name);
    }
  });
  TASTI_RETURN_NOT_OK(layer_status);
  AppendChecksumFooter(&out);
  return out;
}

Result<Mlp> DeserializeMlp(const std::string& buffer) {
  Result<size_t> payload_size = VerifyChecksumFooter(buffer);
  TASTI_RETURN_NOT_OK(payload_size.status());
  const std::string payload = buffer.substr(0, *payload_size);
  size_t at = 0;
  uint32_t magic = 0, num_layers = 0;
  if (!Get(payload, &at, &magic) || magic != kMagic) {
    return Status::InvalidArgument("bad magic: not a serialized MLP");
  }
  if (!Get(payload, &at, &num_layers)) {
    return Status::InvalidArgument("truncated MLP header");
  }
  Mlp mlp;
  Rng dummy(0);
  for (uint32_t l = 0; l < num_layers; ++l) {
    uint8_t tag = 0;
    if (!Get(payload, &at, &tag)) {
      return Status::InvalidArgument("truncated layer tag");
    }
    switch (static_cast<LayerTag>(tag)) {
      case LayerTag::kLinear: {
        Matrix weight, bias;
        if (!GetMatrix(payload, &at, &weight) ||
            !GetMatrix(payload, &at, &bias)) {
          return Status::InvalidArgument("truncated Linear weights");
        }
        if (weight.cols() != bias.cols() || bias.rows() != 1) {
          return Status::InvalidArgument("inconsistent Linear shapes");
        }
        auto layer =
            std::make_unique<Linear>(weight.rows(), weight.cols(), &dummy);
        layer->weight().value = std::move(weight);
        layer->bias().value = std::move(bias);
        mlp.Append(std::move(layer));
        break;
      }
      case LayerTag::kReLU:
        mlp.Append(std::make_unique<ReLU>());
        break;
      case LayerTag::kTanh:
        mlp.Append(std::make_unique<Tanh>());
        break;
      case LayerTag::kL2Normalize:
        mlp.Append(std::make_unique<L2Normalize>());
        break;
      default:
        return Status::InvalidArgument("unknown layer tag");
    }
  }
  return mlp;
}

}  // namespace tasti::nn
