#include "nn/random_projection.h"

#include <cmath>

#include "util/status.h"

namespace tasti::nn {

RandomProjection::RandomProjection(size_t in_dim, size_t out_dim, uint64_t seed)
    : in_dim_(in_dim), out_dim_(out_dim), weight_(in_dim, out_dim), bias_(1, out_dim) {
  TASTI_CHECK(in_dim > 0 && out_dim > 0, "RandomProjection dims must be positive");
  Rng rng(seed);
  const float scale = 1.0f / std::sqrt(static_cast<float>(in_dim));
  for (size_t i = 0; i < weight_.size(); ++i) {
    weight_.data()[i] = static_cast<float>(rng.Normal()) * scale;
  }
  for (size_t i = 0; i < bias_.size(); ++i) {
    bias_.data()[i] = static_cast<float>(rng.Normal()) * 0.1f;
  }
}

Matrix RandomProjection::Apply(const Matrix& input) const {
  TASTI_CHECK(input.cols() == in_dim_, "RandomProjection input width mismatch");
  Matrix out;
  Gemm(input, weight_, &out);
  for (size_t r = 0; r < out.rows(); ++r) {
    float* row = out.Row(r);
    const float* b = bias_.Row(0);
    for (size_t c = 0; c < out_dim_; ++c) row[c] = std::tanh(row[c] + b[c]);
  }
  return out;
}

}  // namespace tasti::nn
