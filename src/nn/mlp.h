#ifndef TASTI_NN_MLP_H_
#define TASTI_NN_MLP_H_

/// \file mlp.h
/// The embedding DNN: a sequential multilayer perceptron.
///
/// This stands in for the paper's ResNet-18 / BERT / audio-ResNet embedding
/// networks at laptop scale: the optimization problem (triplet metric
/// learning over record features) is identical, only the backbone capacity
/// differs.

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "nn/layers.h"
#include "nn/matrix.h"
#include "util/random.h"
#include "util/status.h"

namespace tasti::nn {

/// A sequential stack of layers with a shared forward/backward interface.
class Mlp {
 public:
  Mlp() = default;

  // Movable but not copyable (layers own parameter state).
  Mlp(Mlp&&) = default;
  Mlp& operator=(Mlp&&) = default;
  Mlp(const Mlp&) = delete;
  Mlp& operator=(const Mlp&) = delete;

  /// Appends a layer. Layers are applied in insertion order.
  void Append(std::unique_ptr<Layer> layer);

  /// Runs a batch forward through every layer, caching activations.
  Matrix Forward(const Matrix& input);

  /// Backpropagates dLoss/dOutput through the cached forward pass,
  /// accumulating parameter gradients; returns dLoss/dInput.
  Matrix Backward(const Matrix& grad_output);

  /// Runs a batch forward without touching training caches. Safe to call
  /// concurrently from multiple threads on a const model.
  Matrix Infer(const Matrix& input) const;

  /// All trainable parameters across layers.
  std::vector<Parameter*> Params();

  /// Zeroes all parameter gradients.
  void ZeroGrad();

  size_t num_layers() const { return layers_.size(); }

  /// Calls `fn` on every layer in order (used by serialization).
  void VisitLayers(const std::function<void(const Layer&)>& fn) const {
    for (const auto& layer : layers_) fn(*layer);
  }

  /// Deep-copies the architecture and weights.
  Mlp Clone() const;

  /// Standard embedding architecture used throughout the library:
  /// Linear(in, hidden) + ReLU + Linear(hidden, out) + L2Normalize.
  static Mlp MakeEmbeddingNet(size_t in_dim, size_t hidden_dim, size_t out_dim,
                              Rng* rng);

  /// Regression/classification head used by the per-query proxy baseline:
  /// Linear(in, hidden) + ReLU + Linear(hidden, 1).
  static Mlp MakeProxyNet(size_t in_dim, size_t hidden_dim, Rng* rng);

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

}  // namespace tasti::nn

#endif  // TASTI_NN_MLP_H_
