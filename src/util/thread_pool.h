#ifndef TASTI_UTIL_THREAD_POOL_H_
#define TASTI_UTIL_THREAD_POOL_H_

/// \file thread_pool.h
/// A small fixed-size thread pool plus a blocking ParallelFor helper.
///
/// Distance computation (all-records x all-representatives) and embedding
/// inference dominate index construction time; both are embarrassingly
/// parallel over records and run through ParallelFor.

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace tasti {

/// Fixed-size worker pool. Tasks are void() callables; Wait() blocks until
/// all submitted tasks have completed.
class ThreadPool {
 public:
  /// Creates a pool with `num_threads` workers (0 means hardware
  /// concurrency, at least 1).
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void Wait();

  size_t num_threads() const { return workers_.size(); }

  /// Process-wide shared pool, sized to hardware concurrency.
  static ThreadPool& Global();

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable task_ready_;
  std::condition_variable all_done_;
  size_t in_flight_ = 0;
  bool shutting_down_ = false;
};

/// Runs fn(begin..end) partitioned into contiguous shards across the global
/// pool and blocks until all shards complete. fn receives [shard_begin,
/// shard_end). Falls back to inline execution for small ranges.
void ParallelFor(size_t begin, size_t end,
                 const std::function<void(size_t, size_t)>& fn,
                 size_t min_shard_size = 1024);

}  // namespace tasti

#endif  // TASTI_UTIL_THREAD_POOL_H_
