#ifndef TASTI_UTIL_THREAD_POOL_H_
#define TASTI_UTIL_THREAD_POOL_H_

/// \file thread_pool.h
/// A small fixed-size thread pool plus a blocking ParallelFor helper.
///
/// Distance computation (all-records x all-representatives) and embedding
/// inference dominate index construction time; both are embarrassingly
/// parallel over records and run through ParallelFor.

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace tasti {

/// Fixed-size worker pool. Tasks are void() callables; Wait() blocks until
/// all submitted tasks have completed.
class ThreadPool {
 public:
  /// Creates a pool with `num_threads` workers (0 means hardware
  /// concurrency, at least 1).
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution.
  void Submit(std::function<void()> task);

  /// Submits every task and blocks until exactly this batch completes
  /// (other Submit() traffic is unaffected). If any task throws, the rest
  /// of the batch still runs and the first exception is rethrown on the
  /// calling thread. The oracle scheduler uses this to dispatch a batch of
  /// label calls concurrently and fan the results back out.
  void RunBatch(std::vector<std::function<void()>> tasks);

  /// Blocks until every submitted task has finished.
  void Wait();

  size_t num_threads() const { return workers_.size(); }

  /// Process-wide shared pool, sized to hardware concurrency.
  static ThreadPool& Global();

 private:
  void WorkerLoop(size_t worker);

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable task_ready_;
  std::condition_variable all_done_;
  size_t in_flight_ = 0;
  bool shutting_down_ = false;
};

/// Runs fn(begin..end) partitioned into contiguous shards across the global
/// pool and blocks until all shards complete. fn receives [shard_begin,
/// shard_end). Falls back to inline execution for small ranges.
/// If a shard throws, every shard still runs to completion and the first
/// exception is rethrown on the calling thread after the batch drains —
/// the pool itself never terminates or deadlocks. (ParallelForDynamic
/// behaves the same, except the throwing worker stops claiming chunks.)
void ParallelFor(size_t begin, size_t end,
                 const std::function<void(size_t, size_t)>& fn,
                 size_t min_shard_size = 1024);

/// Upper bound on the `worker` index ParallelForDynamic passes to its body.
/// Size per-worker scratch and reduction buffers to this.
size_t ParallelForMaxWorkers();

/// Dynamic-scheduling variant: workers claim fixed-size chunks from a
/// shared atomic cursor, so skewed shards (FPF tail iterations, IVF probe
/// lists) load-balance instead of waiting on the slowest static shard.
/// fn(chunk_begin, chunk_end, worker) runs once per claimed chunk; `worker`
/// in [0, ParallelForMaxWorkers()) identifies the claiming worker so
/// callers can keep per-worker reduction state (pad entries to a cache
/// line — e.g. alignas(64) — to kill false sharing). Chunk boundaries are
/// deterministic (begin + t * chunk_size); which worker claims which chunk
/// is not, so per-worker reductions must be combined order-independently.
void ParallelForDynamic(size_t begin, size_t end,
                        const std::function<void(size_t, size_t, size_t)>& fn,
                        size_t chunk_size = 1024);

}  // namespace tasti

#endif  // TASTI_UTIL_THREAD_POOL_H_
