#include "util/status.h"

#include <cstdio>
#include <cstdlib>

namespace tasti {

namespace {
const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kDataLoss:
      return "DataLoss";
  }
  return "Unknown";
}
}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  if (!msg_.empty()) {
    out += ": ";
    out += msg_;
  }
  return out;
}

namespace internal {
void DieOnBadResult(const Status& status) {
  std::fprintf(stderr, "[tasti] fatal: %s\n", status.ToString().c_str());
  std::abort();
}
}  // namespace internal

}  // namespace tasti
