#include "util/json.h"

#include <cctype>
#include <cstdlib>

namespace tasti::json {

bool Value::AsBool() const {
  TASTI_CHECK(is_bool(), "JSON value is not a bool");
  return bool_;
}

double Value::AsDouble() const {
  TASTI_CHECK(is_number(), "JSON value is not a number");
  return number_;
}

const std::string& Value::AsString() const {
  TASTI_CHECK(is_string(), "JSON value is not a string");
  return string_;
}

const std::vector<Value>& Value::AsArray() const {
  TASTI_CHECK(is_array(), "JSON value is not an array");
  return array_;
}

const std::map<std::string, Value>& Value::AsObject() const {
  TASTI_CHECK(is_object(), "JSON value is not an object");
  return object_;
}

const Value* Value::Find(const std::string& key) const {
  if (!is_object()) return nullptr;
  auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

double Value::GetNumberOr(const std::string& key, double fallback) const {
  const Value* v = Find(key);
  return (v != nullptr && v->is_number()) ? v->number_ : fallback;
}

std::string Value::GetStringOr(const std::string& key,
                               const std::string& fallback) const {
  const Value* v = Find(key);
  return (v != nullptr && v->is_string()) ? v->string_ : fallback;
}

/// Recursive-descent parser over the input text.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<Value> Parse() {
    Value root;
    Status st = ParseValue(&root, 0);
    if (!st.ok()) return st;
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return root;
  }

 private:
  static constexpr int kMaxDepth = 64;

  Status Error(const std::string& message) const {
    return Status::InvalidArgument("JSON parse error at offset " +
                                   std::to_string(pos_) + ": " + message);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ParseValue(Value* out, int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"':
        out->type_ = Value::Type::kString;
        return ParseString(&out->string_);
      case 't':
      case 'f':
        return ParseKeyword(c == 't' ? "true" : "false", out);
      case 'n':
        return ParseKeyword("null", out);
      default:
        return ParseNumber(out);
    }
  }

  Status ParseKeyword(const char* word, Value* out) {
    for (const char* p = word; *p != '\0'; ++p, ++pos_) {
      if (pos_ >= text_.size() || text_[pos_] != *p) {
        return Error(std::string("expected '") + word + "'");
      }
    }
    if (word[0] == 'n') {
      out->type_ = Value::Type::kNull;
    } else {
      out->type_ = Value::Type::kBool;
      out->bool_ = word[0] == 't';
    }
    return Status::OK();
  }

  Status ParseNumber(Value* out) {
    const size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected a value");
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double parsed = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return Error("malformed number");
    out->type_ = Value::Type::kNumber;
    out->number_ = parsed;
    return Status::OK();
  }

  Status ParseString(std::string* out) {
    if (!Consume('"')) return Error("expected '\"'");
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return Status::OK();
      if (c == '\\') {
        if (pos_ >= text_.size()) return Error("unterminated escape");
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'n': out->push_back('\n'); break;
          case 'r': out->push_back('\r'); break;
          case 't': out->push_back('\t'); break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else return Error("bad \\u escape digit");
            }
            if (code > 0xFF) return Error("\\u escape beyond Latin-1 unsupported");
            out->push_back(static_cast<char>(code));
            break;
          }
          default:
            return Error("unknown escape character");
        }
      } else {
        out->push_back(c);
      }
    }
    return Error("unterminated string");
  }

  Status ParseArray(Value* out, int depth) {
    Consume('[');
    out->type_ = Value::Type::kArray;
    SkipWhitespace();
    if (Consume(']')) return Status::OK();
    for (;;) {
      Value element;
      TASTI_RETURN_NOT_OK(ParseValue(&element, depth + 1));
      out->array_.push_back(std::move(element));
      SkipWhitespace();
      if (Consume(']')) return Status::OK();
      if (!Consume(',')) return Error("expected ',' or ']' in array");
    }
  }

  Status ParseObject(Value* out, int depth) {
    Consume('{');
    out->type_ = Value::Type::kObject;
    SkipWhitespace();
    if (Consume('}')) return Status::OK();
    for (;;) {
      SkipWhitespace();
      std::string key;
      TASTI_RETURN_NOT_OK(ParseString(&key));
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' after object key");
      Value member;
      TASTI_RETURN_NOT_OK(ParseValue(&member, depth + 1));
      out->object_.emplace(std::move(key), std::move(member));
      SkipWhitespace();
      if (Consume('}')) return Status::OK();
      if (!Consume(',')) return Error("expected ',' or '}' in object");
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

Result<Value> Value::Parse(const std::string& text) {
  return Parser(text).Parse();
}

}  // namespace tasti::json
