#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/status.h"

namespace tasti {

void RunningStats::Add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::Merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void RunningCovariance::Add(double x, double y) {
  ++n_;
  const double dx = x - mean_x_;
  mean_x_ += dx / static_cast<double>(n_);
  m2x_ += dx * (x - mean_x_);
  const double dy = y - mean_y_;
  mean_y_ += dy / static_cast<double>(n_);
  m2y_ += dy * (y - mean_y_);
  // Note: uses updated mean_y_ and pre-update dx convention of the
  // single-pass co-moment recurrence.
  cxy_ += dx * (y - mean_y_);
}

double RunningCovariance::variance_x() const {
  return n_ < 2 ? 0.0 : m2x_ / static_cast<double>(n_ - 1);
}
double RunningCovariance::variance_y() const {
  return n_ < 2 ? 0.0 : m2y_ / static_cast<double>(n_ - 1);
}
double RunningCovariance::covariance() const {
  return n_ < 2 ? 0.0 : cxy_ / static_cast<double>(n_ - 1);
}

double RunningCovariance::correlation() const {
  const double vx = variance_x();
  const double vy = variance_y();
  if (vx <= 0.0 || vy <= 0.0) return 0.0;
  return covariance() / std::sqrt(vx * vy);
}

double EmpiricalBernsteinHalfWidth(double sample_variance, double range, size_t n,
                                   double delta) {
  TASTI_CHECK(n > 0, "EmpiricalBernsteinHalfWidth requires n > 0");
  TASTI_CHECK(delta > 0.0 && delta < 1.0, "delta must be in (0, 1)");
  const double nd = static_cast<double>(n);
  const double log_term = std::log(3.0 / delta);
  const double var = std::max(sample_variance, 0.0);
  return std::sqrt(2.0 * var * log_term / nd) + 3.0 * range * log_term / nd;
}

double HoeffdingHalfWidth(double range, size_t n, double delta) {
  TASTI_CHECK(n > 0, "HoeffdingHalfWidth requires n > 0");
  TASTI_CHECK(delta > 0.0 && delta < 1.0, "delta must be in (0, 1)");
  return range * std::sqrt(std::log(2.0 / delta) / (2.0 * static_cast<double>(n)));
}

namespace {
// Two-sided normal quantile for tail mass delta (i.e., z with
// P(Z > z) = delta). Beasley-Springer-Moro rational approximation.
double NormalQuantile(double p) {
  // Returns z such that Phi(z) = p, p in (0, 1).
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double plow = 0.02425;
  double q, r;
  if (p < plow) {
    q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p <= 1.0 - plow) {
    q = p - 0.5;
    r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  }
  q = std::sqrt(-2.0 * std::log(1.0 - p));
  return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
         ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
}
}  // namespace

double WilsonUpperBound(size_t successes, size_t n, double delta) {
  TASTI_CHECK(n > 0, "WilsonUpperBound requires n > 0");
  TASTI_CHECK(successes <= n, "successes must not exceed n");
  const double z = NormalQuantile(1.0 - delta);
  const double nd = static_cast<double>(n);
  const double phat = static_cast<double>(successes) / nd;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / nd;
  const double center = phat + z2 / (2.0 * nd);
  const double margin =
      z * std::sqrt(phat * (1.0 - phat) / nd + z2 / (4.0 * nd * nd));
  return std::min(1.0, (center + margin) / denom);
}

double WilsonLowerBound(size_t successes, size_t n, double delta) {
  TASTI_CHECK(n > 0, "WilsonLowerBound requires n > 0");
  TASTI_CHECK(successes <= n, "successes must not exceed n");
  const double z = NormalQuantile(1.0 - delta);
  const double nd = static_cast<double>(n);
  const double phat = static_cast<double>(successes) / nd;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / nd;
  const double center = phat + z2 / (2.0 * nd);
  const double margin =
      z * std::sqrt(phat * (1.0 - phat) / nd + z2 / (4.0 * nd * nd));
  return std::max(0.0, (center - margin) / denom);
}

double Mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double sum = 0.0;
  for (double x : v) sum += x;
  return sum / static_cast<double>(v.size());
}

double Variance(const std::vector<double>& v) {
  if (v.size() < 2) return 0.0;
  const double m = Mean(v);
  double m2 = 0.0;
  for (double x : v) m2 += (x - m) * (x - m);
  return m2 / static_cast<double>(v.size() - 1);
}

double PearsonCorrelation(const std::vector<double>& x, const std::vector<double>& y) {
  if (x.size() != y.size() || x.size() < 2) return 0.0;
  RunningCovariance cov;
  for (size_t i = 0; i < x.size(); ++i) cov.Add(x[i], y[i]);
  return cov.correlation();
}

double Quantile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  TASTI_CHECK(p >= 0.0 && p <= 1.0, "Quantile p must be in [0, 1]");
  std::sort(v.begin(), v.end());
  const double pos = p * static_cast<double>(v.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

}  // namespace tasti
