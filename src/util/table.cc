#include "util/table.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "util/status.h"

namespace tasti {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  TASTI_CHECK(!headers_.empty(), "table requires at least one column");
}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  TASTI_CHECK(cells.size() == headers_.size(), "row arity must match headers");
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      out << "  " << row[c];
      if (c + 1 < row.size()) {
        out << std::string(widths[c] - row[c].size(), ' ');
      }
    }
    out << "\n";
  };
  emit_row(headers_);
  size_t rule = 0;
  for (size_t w : widths) rule += w + 2;
  out << "  " << std::string(rule, '-') << "\n";
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string TablePrinter::ToCsv() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c) out << ",";
      out << row[c];
    }
    out << "\n";
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

std::string Fmt(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

std::string FmtCount(long long value) {
  const bool neg = value < 0;
  unsigned long long mag = neg ? static_cast<unsigned long long>(-value)
                               : static_cast<unsigned long long>(value);
  std::string digits = std::to_string(mag);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  if (neg) out.push_back('-');
  std::reverse(out.begin(), out.end());
  return out;
}

std::string FmtK(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1fk", value / 1000.0);
  return buf;
}

std::string FmtPercent(double fraction) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f%%", fraction * 100.0);
  return buf;
}

std::string FmtDollars(double dollars) {
  return "$" + FmtCount(static_cast<long long>(std::llround(dollars)));
}

}  // namespace tasti
