#ifndef TASTI_UTIL_STATS_H_
#define TASTI_UTIL_STATS_H_

/// \file stats.h
/// Streaming statistics and concentration bounds.
///
/// These primitives back the query processing algorithms: the
/// empirical-Bernstein stopping rule used by BlazeIt-style aggregation and
/// the confidence intervals used by SUPG-style selection.

#include <cstddef>
#include <vector>

namespace tasti {

/// Numerically stable streaming mean/variance (Welford's algorithm).
class RunningStats {
 public:
  /// Adds one observation.
  void Add(double x);

  /// Number of observations added so far.
  size_t count() const { return n_; }

  /// Sample mean; 0 when empty.
  double mean() const { return n_ > 0 ? mean_ : 0.0; }

  /// Unbiased sample variance; 0 with fewer than two observations.
  double variance() const;

  /// Square root of variance().
  double stddev() const;

  double min() const { return min_; }
  double max() const { return max_; }

  /// Merges another accumulator into this one (parallel Welford).
  void Merge(const RunningStats& other);

 private:
  size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Streaming covariance/correlation between two aligned series.
class RunningCovariance {
 public:
  /// Adds one paired observation.
  void Add(double x, double y);

  size_t count() const { return n_; }
  double mean_x() const { return mean_x_; }
  double mean_y() const { return mean_y_; }
  double variance_x() const;
  double variance_y() const;
  double covariance() const;

  /// Pearson correlation; 0 if either series is constant.
  double correlation() const;

 private:
  size_t n_ = 0;
  double mean_x_ = 0.0;
  double mean_y_ = 0.0;
  double m2x_ = 0.0;
  double m2y_ = 0.0;
  double cxy_ = 0.0;
};

/// Half-width of an empirical-Bernstein confidence interval at level
/// 1 - delta for n samples with the given empirical variance and value
/// range `range` (max - min of the support). Mnih, Szepesvari, Audibert
/// (2008), the bound used by BlazeIt's EBS stopping rule.
double EmpiricalBernsteinHalfWidth(double sample_variance, double range, size_t n,
                                   double delta);

/// Hoeffding half-width at level 1 - delta for values with range `range`.
double HoeffdingHalfWidth(double range, size_t n, double delta);

/// Upper binomial confidence bound (Wilson score) on a proportion given
/// `successes` out of `n` at level 1 - delta. Used for SUPG bound checks.
double WilsonUpperBound(size_t successes, size_t n, double delta);

/// Lower binomial confidence bound (Wilson score).
double WilsonLowerBound(size_t successes, size_t n, double delta);

/// Exact mean of a vector; 0 when empty.
double Mean(const std::vector<double>& v);

/// Unbiased sample variance of a vector; 0 with fewer than two elements.
double Variance(const std::vector<double>& v);

/// Pearson correlation of two aligned vectors; 0 on degenerate input.
double PearsonCorrelation(const std::vector<double>& x, const std::vector<double>& y);

/// p-th quantile (linear interpolation) of a vector; p in [0, 1].
double Quantile(std::vector<double> v, double p);

}  // namespace tasti

#endif  // TASTI_UTIL_STATS_H_
