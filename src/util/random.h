#ifndef TASTI_UTIL_RANDOM_H_
#define TASTI_UTIL_RANDOM_H_

/// \file random.h
/// Deterministic, seedable pseudo-random generation.
///
/// All randomized components of the library (dataset synthesis, FPF tie
/// breaking, triplet mining, query sampling) draw from Rng so that every
/// experiment is exactly reproducible from its seed. The generator is
/// xoshiro256** seeded via splitmix64, which is fast, high quality, and has
/// a trivially portable implementation (unlike std::mt19937 distributions,
/// whose outputs differ across standard libraries).

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace tasti {

/// Stateless 64-bit mixer used for seeding and hashing.
uint64_t SplitMix64(uint64_t* state);

/// xoshiro256** PRNG with convenience distributions.
///
/// Distributions are implemented locally (not via <random>) so that streams
/// are identical across platforms and standard libraries.
class Rng {
 public:
  /// Constructs a generator from a seed. Equal seeds give equal streams.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Returns the next raw 64-bit output.
  uint64_t Next();

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t UniformInt(uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Standard normal deviate (Box-Muller with caching).
  double Normal();

  /// Normal deviate with the given mean and standard deviation.
  double Normal(double mean, double stddev);

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p);

  /// Poisson deviate with the given rate (Knuth for small rates, normal
  /// approximation above 64).
  int Poisson(double rate);

  /// Geometric number of failures before the first success; p in (0, 1].
  int Geometric(double p);

  /// Samples an index in [0, weights.size()) proportionally to weights.
  /// Zero-total weights fall back to uniform.
  size_t Categorical(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(UniformInt(i + 1));
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// Returns k distinct indices sampled uniformly from [0, n). If k >= n,
  /// returns all n indices (in random order).
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  /// Forks an independent generator; deterministic in (this stream, salt).
  Rng Fork(uint64_t salt);

 private:
  uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace tasti

#endif  // TASTI_UTIL_RANDOM_H_
