#ifndef TASTI_UTIL_CHECKSUM_H_
#define TASTI_UTIL_CHECKSUM_H_

/// \file checksum.h
/// Integrity footer for serialized artifacts (indexes, MLPs).
///
/// A footer of {magic, payload length, FNV-1a hash} is appended to every
/// serialized buffer. On load, the footer detects truncation (length
/// mismatch), trailing garbage (ditto), and bit flips (hash mismatch)
/// before any payload bytes are interpreted, so corrupt files fail with a
/// Status instead of undefined behavior.

#include <cstddef>
#include <cstdint>
#include <string>

#include "util/status.h"

namespace tasti {

/// 64-bit FNV-1a over a byte range.
uint64_t Fnv1a64(const char* data, size_t size);

/// Appends the 20-byte integrity footer to `buffer`.
void AppendChecksumFooter(std::string* buffer);

/// Verifies the footer of `buffer` and returns the payload size (the
/// buffer without the footer). DataLoss on hash mismatch; InvalidArgument
/// on a missing footer or a length mismatch (truncation / trailing bytes).
Result<size_t> VerifyChecksumFooter(const std::string& buffer);

}  // namespace tasti

#endif  // TASTI_UTIL_CHECKSUM_H_
