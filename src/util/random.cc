#include "util/random.h"

#include <cmath>
#include <numeric>

#include "util/status.h"

namespace tasti {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 random bits into [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

uint64_t Rng::UniformInt(uint64_t n) {
  TASTI_CHECK(n > 0, "UniformInt(n) requires n > 0");
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -n % n;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  TASTI_CHECK(lo <= hi, "UniformInt(lo, hi) requires lo <= hi");
  return lo + static_cast<int64_t>(UniformInt(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller; u1 is bounded away from 0.
  double u1 = 0.0;
  do {
    u1 = Uniform();
  } while (u1 <= 1e-300);
  const double u2 = Uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::Normal(double mean, double stddev) { return mean + stddev * Normal(); }

bool Rng::Bernoulli(double p) { return Uniform() < p; }

int Rng::Poisson(double rate) {
  TASTI_CHECK(rate >= 0.0, "Poisson rate must be non-negative");
  if (rate == 0.0) return 0;
  if (rate > 64.0) {
    // Normal approximation, clamped at zero.
    const double x = Normal(rate, std::sqrt(rate));
    return x < 0.0 ? 0 : static_cast<int>(x + 0.5);
  }
  const double limit = std::exp(-rate);
  int k = 0;
  double prod = Uniform();
  while (prod > limit) {
    ++k;
    prod *= Uniform();
  }
  return k;
}

int Rng::Geometric(double p) {
  TASTI_CHECK(p > 0.0 && p <= 1.0, "Geometric p must be in (0, 1]");
  if (p >= 1.0) return 0;
  double u = 0.0;
  do {
    u = Uniform();
  } while (u <= 1e-300);
  return static_cast<int>(std::log(u) / std::log1p(-p));
}

size_t Rng::Categorical(const std::vector<double>& weights) {
  TASTI_CHECK(!weights.empty(), "Categorical requires at least one weight");
  double total = 0.0;
  for (double w : weights) total += (w > 0.0 ? w : 0.0);
  if (total <= 0.0) return static_cast<size_t>(UniformInt(weights.size()));
  double target = Uniform() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0.0 ? weights[i] : 0.0;
    if (target < w) return i;
    target -= w;
  }
  return weights.size() - 1;
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  std::vector<size_t> all(n);
  std::iota(all.begin(), all.end(), size_t{0});
  if (k >= n) {
    Shuffle(&all);
    return all;
  }
  // Partial Fisher-Yates: only the first k slots need to be finalized.
  for (size_t i = 0; i < k; ++i) {
    size_t j = i + static_cast<size_t>(UniformInt(n - i));
    std::swap(all[i], all[j]);
  }
  all.resize(k);
  return all;
}

Rng Rng::Fork(uint64_t salt) {
  uint64_t seed = Next() ^ (salt * 0x9E3779B97F4A7C15ULL + 0xD1B54A32D192ED03ULL);
  return Rng(seed);
}

}  // namespace tasti
