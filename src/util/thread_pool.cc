#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <string>
#include <utility>

#include "obs/metrics.h"

namespace tasti {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  task_ready_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  size_t depth;
  {
    std::unique_lock<std::mutex> lock(mu_);
    tasks_.push(std::move(task));
    ++in_flight_;
    depth = tasks_.size();
  }
  task_ready_.notify_one();
  if (obs::MetricsEnabled()) {
    static obs::Counter* const submitted =
        obs::MetricsRegistry::Global().counter("threadpool.tasks_submitted",
                                               "tasks");
    static obs::Histogram* const queue_depth =
        obs::MetricsRegistry::Global().histogram(
            "threadpool.queue_depth",
            obs::ExponentialBuckets(1.0, 2.0, 12), "tasks");
    submitted->Increment();
    queue_depth->Observe(static_cast<double>(depth));
  }
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

namespace {
// An exception escaping a worker thread would std::terminate the process
// and leave in_flight_ stuck. Tasks that need their exceptions (ParallelFor
// batches) capture them inside the task; anything that still escapes is
// swallowed here and counted.
void RunGuarded(const std::function<void()>& task) {
  try {
    task();
  } catch (...) {
    if (obs::MetricsEnabled()) {
      static obs::Counter* const dropped =
          obs::MetricsRegistry::Global().counter(
              "threadpool.task_exceptions_dropped", "exceptions");
      dropped->Increment();
    }
  }
}
}  // namespace

void ThreadPool::WorkerLoop(size_t worker) {
  // Instrument pointers resolve lazily (metrics may be enabled after the
  // pool spins up) and are cached per worker thread; registry instruments
  // are never destroyed, so the cached pointers cannot dangle.
  obs::Counter* busy_micros = nullptr;
  obs::Counter* total_busy = nullptr;
  obs::Counter* completed = nullptr;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_ready_.wait(lock, [this] { return shutting_down_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    if (obs::MetricsEnabled()) {
      if (busy_micros == nullptr) {
        obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
        busy_micros = registry.counter(
            "threadpool.worker." + std::to_string(worker) + ".busy_micros",
            "micros");
        total_busy = registry.counter("threadpool.busy_micros", "micros");
        completed = registry.counter("threadpool.tasks_completed", "tasks");
      }
      const auto start = std::chrono::steady_clock::now();
      RunGuarded(task);
      const auto micros = static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - start)
              .count());
      busy_micros->Increment(micros);
      total_busy->Increment(micros);
      completed->Increment();
    } else {
      RunGuarded(task);
    }
    {
      std::unique_lock<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool pool;
  return pool;
}

namespace {
// Per-call completion latch so that concurrent ParallelFor invocations (or
// invocations from within pool tasks) never observe each other's work.
// Also collects the first exception a shard throws: every shard still runs
// to completion (counts down), and the caller rethrows after Wait() — the
// batch fails without terminating the process or deadlocking the latch.
struct Latch {
  std::mutex mu;
  std::condition_variable cv;
  size_t remaining;
  std::exception_ptr error;
  explicit Latch(size_t n) : remaining(n) {}
  void CountDown() {
    std::unique_lock<std::mutex> lock(mu);
    if (--remaining == 0) cv.notify_all();
  }
  void RecordError(std::exception_ptr e) {
    std::unique_lock<std::mutex> lock(mu);
    if (!error) error = std::move(e);
  }
  void Wait() {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [this] { return remaining == 0; });
  }
  void RethrowIfError() {
    // No lock: Wait() already synchronized with every CountDown().
    if (error) std::rethrow_exception(error);
  }
};

thread_local bool t_inside_pool_task = false;
}  // namespace

void ThreadPool::RunBatch(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  if (tasks.size() == 1) {
    // No fan-out to wait on; run inline (also safe from inside a pool task).
    tasks[0]();
    return;
  }
  Latch latch(tasks.size());
  for (auto& task : tasks) {
    Submit([task = std::move(task), &latch] {
      try {
        task();
      } catch (...) {
        latch.RecordError(std::current_exception());
      }
      latch.CountDown();
    });
  }
  latch.Wait();
  latch.RethrowIfError();
}

void ParallelFor(size_t begin, size_t end,
                 const std::function<void(size_t, size_t)>& fn,
                 size_t min_shard_size) {
  if (end <= begin) return;
  const size_t n = end - begin;
  ThreadPool& pool = ThreadPool::Global();
  const size_t max_shards = pool.num_threads() * 4;
  size_t shards = std::min(max_shards, (n + min_shard_size - 1) / min_shard_size);
  // Nested parallelism would deadlock a fixed pool; run nested calls inline.
  if (shards <= 1 || t_inside_pool_task) {
    fn(begin, end);
    return;
  }
  const size_t chunk = (n + shards - 1) / shards;
  const size_t actual_shards = (n + chunk - 1) / chunk;
  Latch latch(actual_shards);
  for (size_t s = 0; s < actual_shards; ++s) {
    const size_t lo = begin + s * chunk;
    const size_t hi = std::min(end, lo + chunk);
    pool.Submit([&fn, &latch, lo, hi] {
      t_inside_pool_task = true;
      try {
        fn(lo, hi);
      } catch (...) {
        latch.RecordError(std::current_exception());
      }
      t_inside_pool_task = false;
      latch.CountDown();
    });
  }
  latch.Wait();
  latch.RethrowIfError();
}

size_t ParallelForMaxWorkers() { return ThreadPool::Global().num_threads(); }

void ParallelForDynamic(size_t begin, size_t end,
                        const std::function<void(size_t, size_t, size_t)>& fn,
                        size_t chunk_size) {
  if (end <= begin) return;
  chunk_size = std::max<size_t>(1, chunk_size);
  const size_t n = end - begin;
  ThreadPool& pool = ThreadPool::Global();
  const size_t num_chunks = (n + chunk_size - 1) / chunk_size;
  const size_t workers = std::min(pool.num_threads(), num_chunks);
  // Nested parallelism would deadlock a fixed pool; run nested calls inline.
  if (workers <= 1 || t_inside_pool_task) {
    fn(begin, end, 0);
    return;
  }
  std::atomic<size_t> cursor{begin};
  Latch latch(workers);
  for (size_t w = 0; w < workers; ++w) {
    pool.Submit([&fn, &latch, &cursor, begin, end, chunk_size, w] {
      t_inside_pool_task = true;
      try {
        for (;;) {
          const size_t lo = cursor.fetch_add(chunk_size);
          if (lo >= end) break;
          fn(lo, std::min(end, lo + chunk_size), w);
        }
      } catch (...) {
        // Stop claiming chunks; other workers drain the range.
        latch.RecordError(std::current_exception());
      }
      t_inside_pool_task = false;
      latch.CountDown();
    });
  }
  latch.Wait();
  latch.RethrowIfError();
}

}  // namespace tasti
