#include "util/checksum.h"

#include <cstring>

namespace tasti {

namespace {
constexpr uint32_t kFooterMagic = 0x5443484B;  // "TCHK"
constexpr size_t kFooterSize =
    sizeof(uint32_t) + sizeof(uint64_t) + sizeof(uint64_t);
}  // namespace

uint64_t Fnv1a64(const char* data, size_t size) {
  uint64_t hash = 0xCBF29CE484222325ULL;
  for (size_t i = 0; i < size; ++i) {
    hash ^= static_cast<unsigned char>(data[i]);
    hash *= 0x100000001B3ULL;
  }
  return hash;
}

void AppendChecksumFooter(std::string* buffer) {
  const uint64_t payload_size = buffer->size();
  const uint64_t hash = Fnv1a64(buffer->data(), buffer->size());
  buffer->append(reinterpret_cast<const char*>(&kFooterMagic),
                 sizeof(kFooterMagic));
  buffer->append(reinterpret_cast<const char*>(&payload_size),
                 sizeof(payload_size));
  buffer->append(reinterpret_cast<const char*>(&hash), sizeof(hash));
}

Result<size_t> VerifyChecksumFooter(const std::string& buffer) {
  if (buffer.size() < kFooterSize) {
    return Status::InvalidArgument("truncated file: no integrity footer");
  }
  const char* footer = buffer.data() + buffer.size() - kFooterSize;
  uint32_t magic = 0;
  uint64_t payload_size = 0, hash = 0;
  std::memcpy(&magic, footer, sizeof(magic));
  std::memcpy(&payload_size, footer + sizeof(magic), sizeof(payload_size));
  std::memcpy(&hash, footer + sizeof(magic) + sizeof(payload_size),
              sizeof(hash));
  if (magic != kFooterMagic) {
    return Status::InvalidArgument("missing or corrupt integrity footer");
  }
  if (payload_size != buffer.size() - kFooterSize) {
    return Status::InvalidArgument(
        "payload length mismatch (truncated file or trailing bytes)");
  }
  if (Fnv1a64(buffer.data(), payload_size) != hash) {
    return Status::DataLoss("checksum mismatch: file is corrupt");
  }
  return static_cast<size_t>(payload_size);
}

}  // namespace tasti
