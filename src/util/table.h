#ifndef TASTI_UTIL_TABLE_H_
#define TASTI_UTIL_TABLE_H_

/// \file table.h
/// Aligned console tables and CSV emission for the benchmark harness.
///
/// Every figure/table bench prints its series through TablePrinter so output
/// is uniform and machine-scrapable.

#include <string>
#include <vector>

namespace tasti {

/// Builds a column-aligned text table.
///
/// Usage:
///   TablePrinter t({"method", "dataset", "labeler calls"});
///   t.AddRow({"TASTI-T", "night-street", Fmt(21200)});
///   std::cout << t.ToString();
class TablePrinter {
 public:
  /// Creates a table with the given column headers.
  explicit TablePrinter(std::vector<std::string> headers);

  /// Appends a row; must match the header arity.
  void AddRow(std::vector<std::string> cells);

  /// Renders the table with a header rule and aligned columns.
  std::string ToString() const;

  /// Renders the table as CSV (no alignment padding).
  std::string ToCsv() const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` fractional digits.
std::string Fmt(double value, int digits = 2);

/// Formats an integer count with thousands separators ("21,200").
std::string FmtCount(long long value);

/// Formats a value in thousands with one decimal ("21.2k").
std::string FmtK(double value);

/// Formats a percentage with one decimal ("7.8%").
std::string FmtPercent(double fraction);

/// Formats US dollars ("$1,482").
std::string FmtDollars(double dollars);

}  // namespace tasti

#endif  // TASTI_UTIL_TABLE_H_
