#ifndef TASTI_UTIL_STATUS_H_
#define TASTI_UTIL_STATUS_H_

/// \file status.h
/// Error handling primitives for the TASTI library.
///
/// Public APIs report recoverable errors through tasti::Status (for void
/// operations) and tasti::Result<T> (for value-returning operations), in the
/// style of RocksDB / Arrow. Exceptions are never thrown across the library
/// boundary; programming errors are caught with TASTI_CHECK (which aborts).

#include <optional>
#include <string>
#include <utility>
#include <variant>

namespace tasti {

/// Error categories surfaced by the library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kFailedPrecondition,
  kNotFound,
  kInternal,
  kIOError,
  // Oracle / RPC-style failure categories (labeler fault tolerance).
  kUnavailable,        ///< transient outage; safe to retry
  kDeadlineExceeded,   ///< the call ran past its deadline; safe to retry
  kResourceExhausted,  ///< throttled / out of quota; retry after backoff
  kDataLoss,           ///< payload corrupt or unrecoverable
};

/// Lightweight status object: a code plus a human-readable message.
///
/// Statuses are cheap to copy in the OK case (no allocation) and carry a
/// message only on error.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// Renders e.g. "InvalidArgument: k must be positive".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && msg_ == other.msg_;
  }

 private:
  StatusCode code_;
  std::string msg_;
};

/// A value-or-error holder, analogous to arrow::Result.
///
/// A Result is either a value of type T or a non-OK Status. Accessing the
/// value of an errored Result aborts the process (programming error).
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (the success path).
  Result(T value) : payload_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from a non-OK status (the error path).
  Result(Status status) : payload_(std::move(status)) {  // NOLINT(runtime/explicit)
    if (std::get<Status>(payload_).ok()) {
      // An OK status carries no value; treat as internal error.
      payload_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return std::holds_alternative<T>(payload_); }

  /// Returns the error status, or OK if this Result holds a value.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(payload_);
  }

  /// Returns the contained value; aborts if this Result holds an error.
  const T& value() const& {
    AbortIfError();
    return std::get<T>(payload_);
  }
  T& value() & {
    AbortIfError();
    return std::get<T>(payload_);
  }
  T&& value() && {
    AbortIfError();
    return std::get<T>(std::move(payload_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value or `fallback` if this Result holds an error.
  T ValueOr(T fallback) const {
    if (ok()) return std::get<T>(payload_);
    return fallback;
  }

 private:
  void AbortIfError() const;

  std::variant<T, Status> payload_;
};

namespace internal {
[[noreturn]] void DieOnBadResult(const Status& status);
}  // namespace internal

template <typename T>
void Result<T>::AbortIfError() const {
  if (!ok()) internal::DieOnBadResult(std::get<Status>(payload_));
}

}  // namespace tasti

/// Propagates a non-OK Status from the current function.
#define TASTI_RETURN_NOT_OK(expr)                \
  do {                                           \
    ::tasti::Status _st = (expr);                \
    if (!_st.ok()) return _st;                   \
  } while (0)

/// Aborts with a message if `cond` is false. For programming errors only.
#define TASTI_CHECK(cond, msg)                                          \
  do {                                                                  \
    if (!(cond)) ::tasti::internal::DieOnBadResult(                     \
        ::tasti::Status::Internal(std::string("CHECK failed: ") + msg)); \
  } while (0)

#endif  // TASTI_UTIL_STATUS_H_
