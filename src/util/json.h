#ifndef TASTI_UTIL_JSON_H_
#define TASTI_UTIL_JSON_H_

/// \file json.h
/// Minimal read-only JSON parser.
///
/// Exists so the observability exports (Chrome traces, metrics snapshots,
/// query logs) can be validated without an external dependency: the
/// trace_check CTest and tests/obs_test.cc parse the emitted files and
/// assert structure. Supports the full JSON value grammar except \uXXXX
/// escapes beyond Latin-1 (the exporters never emit them); numbers are
/// parsed as double.

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/status.h"

namespace tasti::json {

/// A parsed JSON value (immutable DOM).
class Value {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Parses a complete JSON document (trailing whitespace allowed,
  /// trailing garbage rejected).
  static Result<Value> Parse(const std::string& text);

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Typed accessors; abort (TASTI_CHECK) on type mismatch.
  bool AsBool() const;
  double AsDouble() const;
  const std::string& AsString() const;
  const std::vector<Value>& AsArray() const;
  const std::map<std::string, Value>& AsObject() const;

  /// Object member lookup; nullptr if absent or not an object.
  const Value* Find(const std::string& key) const;

  /// Convenience: Find(key) if it holds the matching type, else fallback.
  double GetNumberOr(const std::string& key, double fallback) const;
  std::string GetStringOr(const std::string& key,
                          const std::string& fallback) const;

  Value() : type_(Type::kNull) {}

 private:
  friend class Parser;

  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Value> array_;
  std::map<std::string, Value> object_;
};

}  // namespace tasti::json

#endif  // TASTI_UTIL_JSON_H_
