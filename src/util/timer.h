#ifndef TASTI_UTIL_TIMER_H_
#define TASTI_UTIL_TIMER_H_

/// \file timer.h
/// Wall-clock timing for construction-cost experiments.

#include <chrono>

namespace tasti {

/// Simple monotonic stopwatch. Starts on construction.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Resets the start point to now.
  void Restart() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or the last Restart().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds.
  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace tasti

#endif  // TASTI_UTIL_TIMER_H_
