#ifndef TASTI_UTIL_TIMER_H_
#define TASTI_UTIL_TIMER_H_

/// \file timer.h
/// Wall-clock timing for construction-cost experiments and the
/// observability layer's phase attribution.

#include <chrono>

namespace tasti {

/// Monotonic stopwatch with pause/resume accumulation. Starts running on
/// construction. Pause()/Resume() let a phase timer exclude nested work —
/// e.g. a query-phase timer pauses while the target labeler runs, so
/// algorithm time and oracle time are attributed separately (see
/// obs::TimedLabeler).
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Resets accumulated time and restarts from now.
  void Restart() {
    accumulated_ = 0.0;
    running_ = true;
    start_ = Clock::now();
  }

  /// Stops the clock, banking the elapsed time. No-op if already paused.
  void Pause() {
    if (!running_) return;
    accumulated_ += std::chrono::duration<double>(Clock::now() - start_).count();
    running_ = false;
  }

  /// Restarts the clock after a Pause(). No-op if already running.
  void Resume() {
    if (running_) return;
    running_ = true;
    start_ = Clock::now();
  }

  bool running() const { return running_; }

  /// Accumulated elapsed seconds, excluding paused intervals.
  double Seconds() const {
    double total = accumulated_;
    if (running_) {
      total += std::chrono::duration<double>(Clock::now() - start_).count();
    }
    return total;
  }

  /// Elapsed milliseconds.
  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
  double accumulated_ = 0.0;
  bool running_ = true;
};

}  // namespace tasti

#endif  // TASTI_UTIL_TIMER_H_
