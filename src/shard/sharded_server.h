#ifndef TASTI_SHARD_SHARDED_SERVER_H_
#define TASTI_SHARD_SHARDED_SERVER_H_

/// \file sharded_server.h
/// ShardedServer: scatter-gather serving over K per-shard TastiServers.
///
/// Each shard is a full TastiServer over its record range — own index,
/// worker pool, oracle scheduler, ScoreCache partition, epoch chain, and
/// (when durability is on) its own WAL/checkpoint directory
/// `<dir>/shard-<s>`. A query scatters to every shard as a sub-query
/// (budgets split proportionally to shard size, confidence tightened to
/// ShardConfidence so the union bound recovers the requested level) and
/// the partials gather through the per-kind mergers in queries/merge.h.
/// Limit queries dispatch shards sequentially and stop as soon as enough
/// matches accumulated, so a hit-rich first shard spares the rest any
/// oracle spend.
///
/// Cracks stay shard-local by construction: a sub-query's annotations are
/// records of its own shard, so auto-crack republishes only that shard's
/// epoch — the other K-1 shards keep serving their current snapshots and
/// their ScoreCache entries stay warm.

#include <cstddef>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/partition.h"
#include "queries/merge.h"
#include "serve/server.h"
#include "shard/sharded_index.h"

namespace tasti::shard {

/// Straggler hedging for scatter-gather queries (DESIGN.md §15). When a
/// shard's sub-query has not answered within the hedge delay — a quantile
/// of recently observed sub-query latencies — its sub-query is
/// re-dispatched once at a reduced oracle budget; whichever attempt
/// answers first wins and the other is abandoned.
struct HedgePolicy {
  bool enabled = false;
  /// Latency quantile of recent sub-queries used as the hedge delay.
  double delay_quantile = 0.95;
  /// Floor for the hedge delay; also the cold-start delay before any
  /// latency history exists.
  double min_delay_ms = 5.0;
  /// Hedge sub-queries run at this fraction of the primary's oracle
  /// budget (min 1): the straggler is likely oracle-bound, so the retry
  /// deliberately asks for a cheaper answer.
  double budget_fraction = 0.25;
};

struct ShardedServerOptions {
  size_t num_shards = 2;
  /// Start / recover shards concurrently on the global ThreadPool.
  bool parallel_start = true;
  /// Split SUPG / validation budgets across shards proportionally to
  /// shard size (queries::SplitBudget). Off = every shard gets the full
  /// budget (spends ~K times the oracle calls for tighter per-shard fits).
  bool scale_query_budgets = true;
  /// Stop dispatching limit sub-queries once `want` matches accumulated.
  bool limit_early_stop = true;
  /// Divide index construction budgets by K (see ShardedIndexOptions).
  bool scale_index_budgets = true;
  /// Straggler hedging for scattered sub-queries.
  HedgePolicy hedge;
  /// Degraded partial gather: when a deadline-bounded query's shards have
  /// not all answered at the deadline (or a shard failed / was shed),
  /// merge whatever answered through the queries/merge.h *Degraded
  /// mergers — absent shards explicitly widen the merged confidence —
  /// instead of failing the whole query. Requires at least one usable
  /// partial; the response is marked degraded with a per-shard
  /// completeness map.
  bool partial_gather = false;
  /// Per-shard server template. Applied per shard with: seed offset by
  /// shard, index options via ShardIndexOptions, confidence tightened to
  /// ShardConfidence(confidence, K), durability.dir suffixed "/shard-<s>".
  /// num_workers is per shard — K shards run K * num_workers workers.
  serve::ServerOptions server;
};

/// One scatter-gathered query: the merged dataset-level answer plus the
/// per-shard partials that produced it.
struct ShardedQueryResponse {
  /// Merged payload; `epoch` is the max shard epoch involved and the
  /// accounting fields are sums over partials.
  serve::QueryResponse merged;
  /// Per-shard responses, in shard order. For early-terminated limit
  /// queries only the first shards_queried entries exist.
  std::vector<serve::QueryResponse> partials;
  /// Shards actually dispatched (== num_shards except limit early stop).
  size_t shards_queried = 0;
  /// Epoch each dispatched shard answered at.
  std::vector<uint64_t> shard_epochs;
  /// Per-shard completeness map (parallel to partials): true when the
  /// shard delivered a usable partial that the merge consumed.
  std::vector<bool> shard_complete;
  /// Shards whose sub-query was re-dispatched by the hedge policy.
  size_t hedged_shards = 0;
  /// True when the merge ran over a strict subset of shards (absent
  /// shards widened the interval; merged.degraded is set). Absent-shard
  /// failure statuses are then informational, not merged.status.
  bool degraded_gather = false;
  /// Coverage of the gather (filled by the degraded mergers; full
  /// coverage defaults otherwise).
  queries::GatherQuality quality;
};

/// Scatter-gather serving engine. Execute/AppendRecords/stats are
/// thread-safe; Start/RecoverFrom/Drain/Shutdown follow TastiServer's
/// lifecycle rules applied to every shard.
class ShardedServer {
 public:
  /// The dataset and oracle must outlive the server; the oracle must be
  /// thread-safe (shards dispatch to it concurrently).
  ShardedServer(const data::Dataset* dataset,
                labeler::FallibleLabeler* oracle, ShardedServerOptions options);

  ShardedServer(const ShardedServer&) = delete;
  ShardedServer& operator=(const ShardedServer&) = delete;

  /// Attaches a monitor to shard `s` (before Start, as with TastiServer).
  void AttachMonitor(size_t s, serve::ServerMonitor* monitor);

  /// Builds every shard's index (in parallel with parallel_start) and
  /// starts its serving stack. Returns the first shard failure, if any.
  Status Start();

  /// Per-shard recovery fan-out: shard s recovers from
  /// `<dir>/shard-<s>` (dir defaults to the template durability dir).
  /// NotFound from any shard means the sharded deployment has no complete
  /// durable state and the caller should Start() cold.
  Status RecoverFrom(const std::string& dir = "");

  /// Scatters `spec` to the shards and merges the partials. Blocks until
  /// the merged answer is ready (sub-queries of one call run concurrently
  /// across shards; distinct Execute calls may also overlap).
  ShardedQueryResponse Execute(const serve::QuerySpec& spec);

  /// Drains every shard (deterministic mode: applies deferred cracks).
  void Drain();

  /// Drains and stops every shard; idempotent.
  void Shutdown();

  /// Appends records to the last shard's server (keeps global ids dense)
  /// and extends the partition. Returns the first appended global id.
  size_t AppendRecords(const nn::Matrix& features);

  // --- Introspection ---

  size_t num_shards() const { return servers_.size(); }
  const core::Partitioner& partitioner() const { return partitioner_; }
  serve::TastiServer& shard(size_t s) { return *servers_[s]; }
  const serve::TastiServer& shard(size_t s) const { return *servers_[s]; }
  ShardLabelerView* shard_view(size_t s) { return views_[s].get(); }

  /// Summed per-shard tallies (live-safe).
  serve::ServerStats stats() const;

  /// Current epoch of every shard (live-safe).
  std::vector<uint64_t> shard_epochs() const;

  /// Every shard's attribution invariant, plus the cross-shard ledger:
  /// the sum of per-shard accounted invocations must equal the calls the
  /// dataset-wide oracle saw since this server was constructed (exact
  /// because every view call forwards to exactly one oracle call). Call
  /// quiescent (after Drain).
  Status CheckAttributionInvariant() const;

  /// Concatenated per-shard serialized indexes (shard count + lengths +
  /// payloads); the crash harness hashes this to compare a recovered
  /// deployment against a control. Call quiescent.
  Result<std::string> SerializeIndex() const;

 private:
  serve::ServerOptions ShardServerOptions(size_t s) const;
  /// Scatter to all shards and gather all partials (non-limit kinds).
  ShardedQueryResponse ExecuteScattered(const serve::QuerySpec& spec);
  /// Sequential shard dispatch with early termination (limit).
  ShardedQueryResponse ExecuteLimit(const serve::QuerySpec& spec);
  /// Merges the present partials for a non-limit kind; uses the degraded
  /// mergers (widening for absent shards) when any shard is absent.
  void MergePartials(const serve::QuerySpec& spec,
                     const std::vector<size_t>& sizes,
                     const std::vector<size_t>& offsets,
                     ShardedQueryResponse* response) const;
  /// Fills the merged response's kind/epoch/accounting from the partials.
  static void FoldAccounting(ShardedQueryResponse* response);
  /// Current hedge delay: `delay_quantile` of recent sub-query latencies,
  /// floored at min_delay_ms.
  double HedgeDelayMs() const;
  void RecordShardLatency(double ms);

  const data::Dataset* dataset_;
  labeler::FallibleLabeler* oracle_;
  const ShardedServerOptions options_;
  size_t baseline_invocations_ = 0;

  mutable std::mutex partition_mu_;  ///< guards partitioner_ growth
  core::Partitioner partitioner_;

  // Sub-query latency history driving the hedge delay (bounded ring).
  mutable std::mutex latency_mu_;
  std::vector<double> recent_latency_ms_;
  size_t latency_cursor_ = 0;

  std::vector<data::Dataset> shard_datasets_;
  std::vector<std::unique_ptr<ShardLabelerView>> views_;
  std::vector<std::unique_ptr<serve::TastiServer>> servers_;
};

}  // namespace tasti::shard

#endif  // TASTI_SHARD_SHARDED_SERVER_H_
