#include "shard/sharded_index.h"

#include <algorithm>
#include <string>

#include "obs/metrics.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace tasti::shard {

data::Dataset SliceDataset(const data::Dataset& dataset, size_t begin,
                           size_t end, size_t shard) {
  TASTI_CHECK(begin <= end && end <= dataset.size(),
              "SliceDataset: range out of bounds");
  data::Dataset slice;
  slice.name = dataset.name + ".shard" + std::to_string(shard);
  slice.modality = dataset.modality;
  slice.ground_truth.assign(dataset.ground_truth.begin() + begin,
                            dataset.ground_truth.begin() + end);
  slice.features = dataset.features.RowSlice(begin, end);
  slice.closeness = dataset.closeness;
  slice.classes = dataset.classes;
  return slice;
}

core::IndexOptions ShardIndexOptions(const core::IndexOptions& base,
                                     size_t shard, size_t divisor,
                                     bool scale_budgets) {
  core::IndexOptions opts = base;
  opts.seed = base.seed + shard;
  if (scale_budgets && divisor > 1) {
    opts.num_representatives =
        std::max<size_t>(1, base.num_representatives / divisor);
    opts.num_training_records =
        std::max<size_t>(8, base.num_training_records / divisor);
  }
  return opts;
}

size_t ShardedBuildStats::TotalInvocations() const {
  size_t total = 0;
  for (const auto& s : per_shard) total += s.TotalInvocations();
  return total;
}

double ShardedBuildStats::SumBuildSeconds() const {
  double total = 0.0;
  for (const auto& s : per_shard) total += s.TotalSeconds();
  return total;
}

ShardedIndex::ShardedIndex(const data::Dataset* dataset,
                           ShardedIndexOptions options)
    : dataset_(dataset),
      options_(options),
      partitioner_(dataset->size(), options.num_shards) {
  const size_t k = partitioner_.num_shards();
  shard_datasets_.reserve(k);
  views_.reserve(k);
  for (size_t s = 0; s < k; ++s) {
    shard_datasets_.push_back(SliceDataset(
        *dataset_, partitioner_.ShardBegin(s), partitioner_.ShardEnd(s), s));
  }
  shards_.resize(k);
}

Status ShardedIndex::Build(labeler::FallibleLabeler* oracle) {
  TASTI_CHECK(!built_, "ShardedIndex::Build called twice");
  TASTI_CHECK(oracle->num_records() >= partitioner_.num_records(),
              "oracle does not cover the dataset");
  const size_t k = num_shards();
  views_.clear();
  for (size_t s = 0; s < k; ++s) {
    views_.push_back(std::make_unique<ShardLabelerView>(
        oracle, partitioner_.ShardBegin(s), partitioner_.ShardSize(s)));
  }
  build_stats_.per_shard.resize(k);
  WallTimer wall;
  auto build_shard = [&](size_t begin, size_t end) {
    for (size_t s = begin; s < end; ++s) {
      const core::IndexOptions opts =
          ShardIndexOptions(options_.index, s, k, options_.scale_index_budgets);
      shards_[s] =
          core::TastiIndex::Build(shard_datasets_[s], views_[s].get(), opts);
      build_stats_.per_shard[s] = shards_[s].build_stats();
    }
  };
  if (options_.parallel_build && k > 1) {
    // ParallelFor workers mark themselves in-pool, so each shard's inner
    // embedding/distance parallelism runs inline on its worker instead of
    // deadlocking on a saturated pool (which RunBatch tasks would).
    ParallelFor(0, k, build_shard, /*min_shard_size=*/1);
  } else {
    build_shard(0, k);
  }
  build_stats_.wall_seconds = wall.Seconds();
  built_ = true;
  if (obs::MetricsEnabled()) {
    static obs::Counter* const builds =
        obs::MetricsRegistry::Global().counter("shard.builds", "calls");
    static obs::Gauge* const count =
        obs::MetricsRegistry::Global().gauge("shard.count", "shards");
    builds->Increment();
    count->Set(static_cast<double>(k));
  }
  return Status::OK();
}

size_t ShardedIndex::CrackFromLabels(
    const std::vector<size_t>& records,
    const std::vector<data::LabelerOutput>& labels,
    std::vector<size_t>* touched_shards) {
  TASTI_CHECK(built_, "CrackFromLabels before Build");
  TASTI_CHECK(records.size() == labels.size(),
              "CrackFromLabels: records / labels mismatch");
  const size_t k = num_shards();
  std::vector<std::vector<size_t>> local_records(k);
  std::vector<std::vector<data::LabelerOutput>> local_labels(k);
  for (size_t i = 0; i < records.size(); ++i) {
    const size_t s = partitioner_.ShardOf(records[i]);
    local_records[s].push_back(records[i] - partitioner_.ShardBegin(s));
    local_labels[s].push_back(labels[i]);
  }
  size_t added = 0;
  if (touched_shards != nullptr) touched_shards->clear();
  for (size_t s = 0; s < k; ++s) {
    if (local_records[s].empty()) continue;
    added += shards_[s].CrackFromLabels(local_records[s], local_labels[s]);
    if (touched_shards != nullptr) touched_shards->push_back(s);
    if (obs::MetricsEnabled()) {
      static obs::Counter* const cracked =
          obs::MetricsRegistry::Global().counter("shard.cracks_routed",
                                                 "calls");
      cracked->Increment();
    }
  }
  return added;
}

size_t ShardedIndex::AppendRecords(const nn::Matrix& features) {
  TASTI_CHECK(built_, "AppendRecords before Build");
  const size_t last = num_shards() - 1;
  const size_t local_first = shards_[last].AppendRecords(features);
  const size_t global_first = partitioner_.ToGlobal(last, local_first);
  partitioner_.ExtendLastShard(features.rows());
  return global_first;
}

bool ShardedIndex::IsRepresentative(size_t record_id) const {
  const size_t s = partitioner_.ShardOf(record_id);
  return shards_[s].IsRepresentative(record_id - partitioner_.ShardBegin(s));
}

size_t ShardedIndex::num_representatives() const {
  size_t total = 0;
  for (const auto& shard : shards_) total += shard.num_representatives();
  return total;
}

}  // namespace tasti::shard
