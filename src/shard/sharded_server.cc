#include "shard/sharded_server.h"

#include <algorithm>
#include <string>
#include <utility>

#include "obs/metrics.h"
#include "queries/merge.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace tasti::shard {

namespace {

void BumpCounter(const char* name) {
  if (obs::MetricsEnabled()) {
    obs::MetricsRegistry::Global().counter(name, "calls")->Increment();
  }
}

/// Shard directory under a durability base: "<dir>/shard-<s>".
std::string ShardDir(const std::string& dir, size_t s) {
  return dir + "/shard-" + std::to_string(s);
}

}  // namespace

ShardedServer::ShardedServer(const data::Dataset* dataset,
                             labeler::FallibleLabeler* oracle,
                             ShardedServerOptions options)
    : dataset_(dataset),
      oracle_(oracle),
      options_(std::move(options)),
      partitioner_(dataset->size(), options_.num_shards) {
  TASTI_CHECK(oracle_->num_records() >= dataset_->size(),
              "oracle does not cover the dataset");
  baseline_invocations_ = oracle_->invocations();
  const size_t k = partitioner_.num_shards();
  shard_datasets_.reserve(k);
  views_.reserve(k);
  servers_.reserve(k);
  for (size_t s = 0; s < k; ++s) {
    shard_datasets_.push_back(SliceDataset(
        *dataset_, partitioner_.ShardBegin(s), partitioner_.ShardEnd(s), s));
    views_.push_back(std::make_unique<ShardLabelerView>(
        oracle_, partitioner_.ShardBegin(s), partitioner_.ShardSize(s)));
  }
  // Servers are constructed after every slice exists: the vectors above
  // no longer reallocate, so the pointers handed to TastiServer are stable.
  for (size_t s = 0; s < k; ++s) {
    servers_.push_back(std::make_unique<serve::TastiServer>(
        &shard_datasets_[s], views_[s].get(), ShardServerOptions(s)));
  }
  if (obs::MetricsEnabled()) {
    obs::MetricsRegistry::Global()
        .gauge("shard.count", "shards")
        ->Set(static_cast<double>(k));
  }
}

serve::ServerOptions ShardedServer::ShardServerOptions(size_t s) const {
  const size_t k = partitioner_.num_shards();
  serve::ServerOptions opts = options_.server;
  opts.index = ShardIndexOptions(options_.server.index, s, k,
                                 options_.scale_index_budgets);
  // Large odd stride keeps per-shard seed streams disjoint even after the
  // server derives per-query seeds from them.
  opts.seed = options_.server.seed + 1000003 * s;
  // Union bound: K sub-queries at 1-(1-c)/K jointly succeed with prob c.
  opts.confidence = queries::ShardConfidence(options_.server.confidence, k);
  if (!options_.server.durability.dir.empty()) {
    opts.durability.dir = ShardDir(options_.server.durability.dir, s);
  }
  return opts;
}

void ShardedServer::AttachMonitor(size_t s, serve::ServerMonitor* monitor) {
  servers_[s]->AttachMonitor(monitor);
}

Status ShardedServer::Start() {
  const size_t k = num_shards();
  std::vector<Status> statuses(k, Status::OK());
  auto start_range = [&](size_t begin, size_t end) {
    for (size_t s = begin; s < end; ++s) statuses[s] = servers_[s]->Start();
  };
  if (options_.parallel_start && k > 1) {
    ParallelFor(0, k, start_range, /*min_shard_size=*/1);
  } else {
    start_range(0, k);
  }
  for (const Status& status : statuses) {
    if (!status.ok()) return status;
  }
  return Status::OK();
}

Status ShardedServer::RecoverFrom(const std::string& dir) {
  const std::string base =
      dir.empty() ? options_.server.durability.dir : dir;
  if (base.empty()) {
    return Status::FailedPrecondition(
        "ShardedServer::RecoverFrom: no durability directory configured");
  }
  const size_t k = num_shards();
  std::vector<Status> statuses(k, Status::OK());
  auto recover_range = [&](size_t begin, size_t end) {
    for (size_t s = begin; s < end; ++s) {
      statuses[s] = servers_[s]->RecoverFrom(ShardDir(base, s));
    }
  };
  if (options_.parallel_start && k > 1) {
    ParallelFor(0, k, recover_range, /*min_shard_size=*/1);
  } else {
    recover_range(0, k);
  }
  for (const Status& status : statuses) {
    if (!status.ok()) return status;
  }
  return Status::OK();
}

ShardedQueryResponse ShardedServer::Execute(const serve::QuerySpec& spec) {
  BumpCounter("shard.queries");
  WallTimer wall;
  ShardedQueryResponse response = spec.kind == serve::QueryKind::kLimit
                                      ? ExecuteLimit(spec)
                                      : ExecuteScattered(spec);
  response.merged.kind = spec.kind;
  FoldAccounting(&response);
  response.merged.execute_seconds = wall.Seconds();
  return response;
}

ShardedQueryResponse ShardedServer::ExecuteScattered(
    const serve::QuerySpec& spec) {
  const size_t k = num_shards();
  std::vector<size_t> sizes;
  std::vector<size_t> offsets;
  {
    std::lock_guard<std::mutex> lock(partition_mu_);
    sizes = partitioner_.ShardSizes();
    offsets = partitioner_.ShardOffsets();
  }
  const std::vector<size_t> budgets =
      options_.scale_query_budgets ? queries::SplitBudget(spec.budget, sizes)
                                   : std::vector<size_t>(k, spec.budget);
  const std::vector<size_t> validation_budgets =
      options_.scale_query_budgets
          ? queries::SplitBudget(spec.validation_budget, sizes)
          : std::vector<size_t>(k, spec.validation_budget);

  ShardedQueryResponse response;
  response.partials.resize(k);
  std::vector<Result<uint64_t>> submitted;
  submitted.reserve(k);
  for (size_t s = 0; s < k; ++s) {
    serve::QuerySpec sub = spec;
    sub.budget = budgets[s];
    sub.validation_budget = validation_budgets[s];
    submitted.push_back(servers_[s]->Submit(sub));
    BumpCounter("shard.partials");
  }
  for (size_t s = 0; s < k; ++s) {
    if (submitted[s].ok()) {
      response.partials[s] = servers_[s]->Wait(submitted[s].value());
    } else {
      response.partials[s].kind = spec.kind;
      response.partials[s].status = submitted[s].status();
    }
    response.shard_epochs.push_back(response.partials[s].epoch);
  }
  response.shards_queried = k;

  bool all_ok = true;
  for (const auto& partial : response.partials) {
    all_ok = all_ok && partial.status.ok();
  }
  if (!all_ok) return response;  // FoldAccounting surfaces the failure

  switch (spec.kind) {
    case serve::QueryKind::kAggregate: {
      std::vector<queries::AggregationResult> parts;
      parts.reserve(k);
      for (const auto& p : response.partials) parts.push_back(p.aggregate);
      response.merged.aggregate = queries::MergeAggregates(parts, sizes);
      break;
    }
    case serve::QueryKind::kAggregateWhere: {
      std::vector<queries::PredicateAggregationResult> parts;
      parts.reserve(k);
      for (const auto& p : response.partials) {
        parts.push_back(p.aggregate_where);
      }
      response.merged.aggregate_where =
          queries::MergePredicateAggregates(parts, sizes);
      break;
    }
    case serve::QueryKind::kSupgRecall:
    case serve::QueryKind::kSupgPrecision: {
      std::vector<queries::SupgResult> parts;
      parts.reserve(k);
      for (const auto& p : response.partials) parts.push_back(p.supg);
      response.merged.supg = queries::MergeSupg(parts, offsets);
      break;
    }
    case serve::QueryKind::kThresholdSelect: {
      std::vector<queries::ThresholdSelectResult> parts;
      parts.reserve(k);
      for (const auto& p : response.partials) parts.push_back(p.select);
      response.merged.select = queries::MergeThresholdSelects(parts, offsets);
      break;
    }
    case serve::QueryKind::kLimit:
      TASTI_CHECK(false, "limit takes the sequential path");
  }
  return response;
}

ShardedQueryResponse ShardedServer::ExecuteLimit(
    const serve::QuerySpec& spec) {
  const size_t k = num_shards();
  std::vector<size_t> offsets;
  {
    std::lock_guard<std::mutex> lock(partition_mu_);
    offsets = partitioner_.ShardOffsets();
  }
  ShardedQueryResponse response;
  size_t found = 0;
  for (size_t s = 0; s < k; ++s) {
    serve::QuerySpec sub = spec;
    sub.want = spec.want - found;  // only what's still missing
    response.partials.push_back(servers_[s]->Execute(sub));
    response.shard_epochs.push_back(response.partials.back().epoch);
    BumpCounter("shard.partials");
    found += response.partials.back().limit.found.size();
    if (!response.partials.back().status.ok()) break;
    if (options_.limit_early_stop && found >= spec.want && s + 1 < k) {
      BumpCounter("shard.limit_early_stops");
      break;
    }
  }
  response.shards_queried = response.partials.size();

  bool all_ok = true;
  for (const auto& partial : response.partials) {
    all_ok = all_ok && partial.status.ok();
  }
  if (!all_ok) return response;

  std::vector<queries::LimitResult> parts;
  parts.reserve(response.partials.size());
  for (const auto& p : response.partials) parts.push_back(p.limit);
  response.merged.limit = queries::MergeLimits(parts, offsets, spec.want);
  return response;
}

void ShardedServer::FoldAccounting(ShardedQueryResponse* response) {
  serve::QueryResponse& merged = response->merged;
  for (const auto& partial : response->partials) {
    merged.epoch = std::max(merged.epoch, partial.epoch);
    merged.attributed_invocations += partial.attributed_invocations;
    merged.logical_oracle_calls += partial.logical_oracle_calls;
    merged.scheduler_cache_hits += partial.scheduler_cache_hits;
    merged.scheduler_dedup_hits += partial.scheduler_dedup_hits;
    merged.cracked_representatives += partial.cracked_representatives;
    merged.proxy_delta_rows += partial.proxy_delta_rows;
    merged.queue_wait_ms = std::max(merged.queue_wait_ms, partial.queue_wait_ms);
    if (merged.status.ok() && !partial.status.ok()) {
      merged.status = partial.status;
    }
  }
}

void ShardedServer::Drain() {
  for (auto& server : servers_) server->Drain();
}

void ShardedServer::Shutdown() {
  for (auto& server : servers_) server->Shutdown();
}

size_t ShardedServer::AppendRecords(const nn::Matrix& features) {
  std::lock_guard<std::mutex> lock(partition_mu_);
  const size_t last = num_shards() - 1;
  const size_t local_first = servers_[last]->AppendRecords(features);
  const size_t global_first = partitioner_.ToGlobal(last, local_first);
  partitioner_.ExtendLastShard(features.rows());
  return global_first;
}

serve::ServerStats ShardedServer::stats() const {
  serve::ServerStats total;
  for (const auto& server : servers_) {
    const serve::ServerStats s = server->stats();
    total.queries_submitted += s.queries_submitted;
    total.queries_completed += s.queries_completed;
    total.index_invocations += s.index_invocations;
    total.query_invocations += s.query_invocations;
    total.epochs_published += s.epochs_published;
    total.live_snapshots += s.live_snapshots;
  }
  return total;
}

std::vector<uint64_t> ShardedServer::shard_epochs() const {
  std::vector<uint64_t> epochs;
  epochs.reserve(servers_.size());
  for (const auto& server : servers_) {
    epochs.push_back(server->current_epoch());
  }
  return epochs;
}

Status ShardedServer::CheckAttributionInvariant() const {
  size_t view_invocations = 0;
  for (size_t s = 0; s < servers_.size(); ++s) {
    const Status status = servers_[s]->CheckAttributionInvariant();
    if (!status.ok()) {
      return Status::Internal("shard " + std::to_string(s) + ": " +
                              status.message());
    }
    view_invocations += views_[s]->invocations();
  }
  // Every view call forwards to exactly one oracle call (FallibleLabeler
  // counts every TryLabel), so the per-shard ledgers must tile the
  // dataset-wide count exactly.
  const size_t oracle_delta = oracle_->invocations() - baseline_invocations_;
  if (view_invocations != oracle_delta) {
    return Status::Internal(
        "cross-shard attribution mismatch: shard views saw " +
        std::to_string(view_invocations) + " calls, oracle saw " +
        std::to_string(oracle_delta));
  }
  return Status::OK();
}

Result<std::string> ShardedServer::SerializeIndex() const {
  std::string blob = "TASTI-SHARDS v1\n";
  blob += std::to_string(servers_.size());
  blob += '\n';
  for (const auto& server : servers_) {
    Result<std::string> part = server->SerializeIndex();
    if (!part.ok()) return part.status();
    blob += std::to_string(part.value().size());
    blob += '\n';
    blob += part.value();
  }
  return blob;
}

}  // namespace tasti::shard
