#include "shard/sharded_server.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>
#include <string>
#include <utility>

#include "obs/metrics.h"
#include "queries/merge.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace tasti::shard {

namespace {

void BumpCounter(const char* name) {
  if (obs::MetricsEnabled()) {
    obs::MetricsRegistry::Global().counter(name, "calls")->Increment();
  }
}

/// Shard directory under a durability base: "<dir>/shard-<s>".
std::string ShardDir(const std::string& dir, size_t s) {
  return dir + "/shard-" + std::to_string(s);
}

}  // namespace

ShardedServer::ShardedServer(const data::Dataset* dataset,
                             labeler::FallibleLabeler* oracle,
                             ShardedServerOptions options)
    : dataset_(dataset),
      oracle_(oracle),
      options_(std::move(options)),
      partitioner_(dataset->size(), options_.num_shards) {
  TASTI_CHECK(oracle_->num_records() >= dataset_->size(),
              "oracle does not cover the dataset");
  baseline_invocations_ = oracle_->invocations();
  const size_t k = partitioner_.num_shards();
  shard_datasets_.reserve(k);
  views_.reserve(k);
  servers_.reserve(k);
  for (size_t s = 0; s < k; ++s) {
    shard_datasets_.push_back(SliceDataset(
        *dataset_, partitioner_.ShardBegin(s), partitioner_.ShardEnd(s), s));
    views_.push_back(std::make_unique<ShardLabelerView>(
        oracle_, partitioner_.ShardBegin(s), partitioner_.ShardSize(s)));
  }
  // Servers are constructed after every slice exists: the vectors above
  // no longer reallocate, so the pointers handed to TastiServer are stable.
  for (size_t s = 0; s < k; ++s) {
    servers_.push_back(std::make_unique<serve::TastiServer>(
        &shard_datasets_[s], views_[s].get(), ShardServerOptions(s)));
  }
  if (obs::MetricsEnabled()) {
    obs::MetricsRegistry::Global()
        .gauge("shard.count", "shards")
        ->Set(static_cast<double>(k));
  }
}

serve::ServerOptions ShardedServer::ShardServerOptions(size_t s) const {
  const size_t k = partitioner_.num_shards();
  serve::ServerOptions opts = options_.server;
  opts.index = ShardIndexOptions(options_.server.index, s, k,
                                 options_.scale_index_budgets);
  // Large odd stride keeps per-shard seed streams disjoint even after the
  // server derives per-query seeds from them.
  opts.seed = options_.server.seed + 1000003 * s;
  // Union bound: K sub-queries at 1-(1-c)/K jointly succeed with prob c.
  opts.confidence = queries::ShardConfidence(options_.server.confidence, k);
  if (!options_.server.durability.dir.empty()) {
    opts.durability.dir = ShardDir(options_.server.durability.dir, s);
  }
  return opts;
}

void ShardedServer::AttachMonitor(size_t s, serve::ServerMonitor* monitor) {
  servers_[s]->AttachMonitor(monitor);
}

Status ShardedServer::Start() {
  const size_t k = num_shards();
  std::vector<Status> statuses(k, Status::OK());
  auto start_range = [&](size_t begin, size_t end) {
    for (size_t s = begin; s < end; ++s) statuses[s] = servers_[s]->Start();
  };
  if (options_.parallel_start && k > 1) {
    ParallelFor(0, k, start_range, /*min_shard_size=*/1);
  } else {
    start_range(0, k);
  }
  for (const Status& status : statuses) {
    if (!status.ok()) return status;
  }
  return Status::OK();
}

Status ShardedServer::RecoverFrom(const std::string& dir) {
  const std::string base =
      dir.empty() ? options_.server.durability.dir : dir;
  if (base.empty()) {
    return Status::FailedPrecondition(
        "ShardedServer::RecoverFrom: no durability directory configured");
  }
  const size_t k = num_shards();
  std::vector<Status> statuses(k, Status::OK());
  auto recover_range = [&](size_t begin, size_t end) {
    for (size_t s = begin; s < end; ++s) {
      statuses[s] = servers_[s]->RecoverFrom(ShardDir(base, s));
    }
  };
  if (options_.parallel_start && k > 1) {
    ParallelFor(0, k, recover_range, /*min_shard_size=*/1);
  } else {
    recover_range(0, k);
  }
  for (const Status& status : statuses) {
    if (!status.ok()) return status;
  }
  return Status::OK();
}

ShardedQueryResponse ShardedServer::Execute(const serve::QuerySpec& spec) {
  BumpCounter("shard.queries");
  WallTimer wall;
  ShardedQueryResponse response = spec.kind == serve::QueryKind::kLimit
                                      ? ExecuteLimit(spec)
                                      : ExecuteScattered(spec);
  response.merged.kind = spec.kind;
  FoldAccounting(&response);
  response.merged.execute_seconds = wall.Seconds();
  return response;
}

ShardedQueryResponse ShardedServer::ExecuteScattered(
    const serve::QuerySpec& spec) {
  const size_t k = num_shards();
  std::vector<size_t> sizes;
  std::vector<size_t> offsets;
  {
    std::lock_guard<std::mutex> lock(partition_mu_);
    sizes = partitioner_.ShardSizes();
    offsets = partitioner_.ShardOffsets();
  }
  const std::vector<size_t> budgets =
      options_.scale_query_budgets ? queries::SplitBudget(spec.budget, sizes)
                                   : std::vector<size_t>(k, spec.budget);
  const std::vector<size_t> validation_budgets =
      options_.scale_query_budgets
          ? queries::SplitBudget(spec.validation_budget, sizes)
          : std::vector<size_t>(k, spec.validation_budget);

  ShardedQueryResponse response;
  response.partials.resize(k);
  response.shard_complete.assign(k, false);
  WallTimer gather_timer;
  std::vector<Result<uint64_t>> submitted;
  submitted.reserve(k);
  for (size_t s = 0; s < k; ++s) {
    serve::QuerySpec sub = spec;
    sub.budget = budgets[s];
    sub.validation_budget = validation_budgets[s];
    submitted.push_back(servers_[s]->Submit(sub));
    BumpCounter("shard.partials");
  }

  // Gathering stops waiting at the query deadline only when partial
  // gather is on — otherwise sub-queries self-degrade under their own
  // deadlines and the gather blocks for all of them (legacy semantics).
  const bool hard_stop = options_.partial_gather && spec.deadline_ms > 0;
  auto wait_left_ms = [&] {
    return hard_stop ? spec.deadline_ms - gather_timer.Seconds() * 1000.0
                     : std::numeric_limits<double>::infinity();
  };

  std::vector<bool> have(k, false);
  std::vector<uint64_t> hedge_ids(k, 0);
  std::vector<bool> hedge_live(k, false);

  if (options_.hedge.enabled) {
    // Hedge phase: give every shard until the quantile-driven hedge delay
    // to answer, then re-dispatch stragglers (and outright failures) once
    // at a reduced oracle budget.
    const double hedge_delay_ms = HedgeDelayMs();
    for (size_t s = 0; s < k; ++s) {
      if (!submitted[s].ok()) continue;
      const double slice =
          std::min(hedge_delay_ms - gather_timer.Seconds() * 1000.0,
                   wait_left_ms());
      std::optional<serve::QueryResponse> r =
          servers_[s]->WaitFor(submitted[s].value(), std::max(0.0, slice));
      if (r.has_value()) {
        response.partials[s] = *std::move(r);
        have[s] = true;
      }
    }
    for (size_t s = 0; s < k; ++s) {
      const bool straggling = submitted[s].ok() && !have[s];
      const bool failed = !submitted[s].ok() ||
                          (have[s] && !response.partials[s].status.ok());
      if (!straggling && !failed) continue;
      serve::QuerySpec sub = spec;
      sub.budget = std::max<size_t>(
          1, static_cast<size_t>(static_cast<double>(budgets[s]) *
                                 options_.hedge.budget_fraction));
      sub.validation_budget = std::max<size_t>(
          1, static_cast<size_t>(static_cast<double>(validation_budgets[s]) *
                                 options_.hedge.budget_fraction));
      Result<uint64_t> hedge = servers_[s]->Submit(sub);
      if (hedge.ok()) {
        hedge_ids[s] = hedge.value();
        hedge_live[s] = true;
        ++response.hedged_shards;
        BumpCounter("shard.hedges");
      }
    }
  }

  // Final gather: per shard, take the first usable answer from the
  // primary or its hedge (alternating short waits while both are in
  // flight), up to the deadline when partial gather is on.
  for (size_t s = 0; s < k; ++s) {
    uint64_t ids[2] = {submitted[s].ok() ? submitted[s].value() : 0,
                       hedge_ids[s]};
    bool live[2] = {submitted[s].ok() && !have[s], hedge_live[s]};
    bool usable = have[s] && response.partials[s].status.ok();
    while (!usable && (live[0] || live[1])) {
      const double left = wait_left_ms();
      if (left <= 0.0) break;
      for (int a = 0; a < 2 && !usable; ++a) {
        if (!live[a]) continue;
        // Alternate 2 ms polls while racing two attempts; otherwise wait
        // out the remaining budget in one shot.
        double slice = (live[0] && live[1]) ? 2.0 : wait_left_ms();
        slice = std::min(slice, wait_left_ms());
        if (slice <= 0.0) break;
        std::optional<serve::QueryResponse> r;
        if (std::isfinite(slice)) {
          r = servers_[s]->WaitFor(ids[a], slice);
        } else {
          r = servers_[s]->Wait(ids[a]);
        }
        if (!r.has_value()) continue;
        live[a] = false;
        if (r->status.ok() || !have[s]) {
          response.partials[s] = *std::move(r);
          have[s] = true;
        }
        usable = have[s] && response.partials[s].status.ok();
      }
    }
    for (int a = 0; a < 2; ++a) {
      if (live[a]) servers_[s]->Abandon(ids[a]);
    }
    if (!have[s]) {
      response.partials[s].kind = spec.kind;
      response.partials[s].status =
          submitted[s].ok()
              ? Status::DeadlineExceeded(
                    "shard " + std::to_string(s) +
                    " did not answer before the gather deadline")
              : submitted[s].status();
      BumpCounter("shard.gather.absent");
    } else {
      RecordShardLatency(response.partials[s].queue_wait_ms +
                         response.partials[s].execute_seconds * 1000.0);
    }
    response.shard_complete[s] = have[s] && response.partials[s].status.ok();
    response.shard_epochs.push_back(response.partials[s].epoch);
  }
  response.shards_queried = k;

  MergePartials(spec, sizes, offsets, &response);
  return response;
}

void ShardedServer::MergePartials(const serve::QuerySpec& spec,
                                  const std::vector<size_t>& sizes,
                                  const std::vector<size_t>& offsets,
                                  ShardedQueryResponse* response) const {
  const size_t k = response->partials.size();
  const std::vector<bool>& present = response->shard_complete;
  size_t absent = 0;
  for (bool ok : present) absent += ok ? 0 : 1;
  if (absent > 0 && (!options_.partial_gather || absent == k)) {
    return;  // FoldAccounting surfaces the failure (legacy semantics)
  }
  response->degraded_gather = absent > 0;
  queries::GatherQuality* quality = &response->quality;

  switch (spec.kind) {
    case serve::QueryKind::kAggregate: {
      std::vector<queries::AggregationResult> parts;
      parts.reserve(k);
      for (const auto& p : response->partials) parts.push_back(p.aggregate);
      response->merged.aggregate =
          queries::MergeAggregatesDegraded(parts, sizes, present, quality);
      break;
    }
    case serve::QueryKind::kAggregateWhere: {
      std::vector<queries::PredicateAggregationResult> parts;
      parts.reserve(k);
      for (const auto& p : response->partials) {
        parts.push_back(p.aggregate_where);
      }
      response->merged.aggregate_where =
          queries::MergePredicateAggregatesDegraded(parts, sizes, present,
                                                    quality);
      break;
    }
    case serve::QueryKind::kSupgRecall:
    case serve::QueryKind::kSupgPrecision: {
      std::vector<queries::SupgResult> parts;
      parts.reserve(k);
      for (const auto& p : response->partials) parts.push_back(p.supg);
      const double recall_target =
          spec.kind == serve::QueryKind::kSupgRecall ? spec.target : 0.0;
      response->merged.supg = queries::MergeSupgDegraded(
          parts, offsets, sizes, present, recall_target, quality);
      break;
    }
    case serve::QueryKind::kThresholdSelect: {
      std::vector<queries::ThresholdSelectResult> parts;
      parts.reserve(k);
      for (const auto& p : response->partials) parts.push_back(p.select);
      response->merged.select = queries::MergeThresholdSelectsDegraded(
          parts, offsets, sizes, present, quality);
      break;
    }
    case serve::QueryKind::kLimit:
      TASTI_CHECK(false, "limit merges in ExecuteLimit");
  }
}

ShardedQueryResponse ShardedServer::ExecuteLimit(
    const serve::QuerySpec& spec) {
  const size_t k = num_shards();
  std::vector<size_t> sizes;
  std::vector<size_t> offsets;
  {
    std::lock_guard<std::mutex> lock(partition_mu_);
    sizes = partitioner_.ShardSizes();
    offsets = partitioner_.ShardOffsets();
  }
  ShardedQueryResponse response;
  // The deadline budget spans the whole sequential dispatch: each shard
  // gets what the previous shards left. Virtual accounting subtracts the
  // partials' reported spend (deterministic); wall accounting re-reads
  // the clock.
  const bool bounded = spec.deadline_ms > 0;
  const bool virtual_time = options_.server.degrade.virtual_ms_per_call > 0;
  WallTimer wall;
  double budget_left_ms = spec.deadline_ms;
  bool deadline_stopped = false;
  size_t found = 0;
  for (size_t s = 0; s < k; ++s) {
    if (bounded && budget_left_ms <= 0.0) {
      deadline_stopped = true;
      BumpCounter("shard.gather.absent");
      break;
    }
    serve::QuerySpec sub = spec;
    sub.want = spec.want - found;  // only what's still missing
    sub.deadline_ms = bounded ? budget_left_ms : 0.0;
    response.partials.push_back(servers_[s]->Execute(sub));
    response.shard_epochs.push_back(response.partials.back().epoch);
    BumpCounter("shard.partials");
    const serve::QueryResponse& partial = response.partials.back();
    if (bounded) {
      budget_left_ms = virtual_time
                           ? budget_left_ms - partial.deadline_spent_ms
                           : spec.deadline_ms - wall.Seconds() * 1000.0;
    }
    found += partial.limit.found.size();
    if (!partial.status.ok()) {
      if (options_.partial_gather) continue;  // treat as absent, scan on
      break;
    }
    if (options_.limit_early_stop && found >= spec.want && s + 1 < k) {
      BumpCounter("shard.limit_early_stops");
      break;
    }
  }
  response.shards_queried = response.partials.size();
  response.shard_complete.resize(response.partials.size());
  bool all_ok = true;
  for (size_t s = 0; s < response.partials.size(); ++s) {
    response.shard_complete[s] = response.partials[s].status.ok();
    all_ok = all_ok && response.shard_complete[s];
  }

  if (all_ok && !deadline_stopped) {
    std::vector<queries::LimitResult> parts;
    parts.reserve(response.partials.size());
    for (const auto& p : response.partials) parts.push_back(p.limit);
    response.merged.limit = queries::MergeLimits(parts, offsets, spec.want);
    return response;
  }
  if (!options_.partial_gather) return response;  // fold surfaces failure

  // Degraded gather: merge what the queried shards found; unqueried and
  // failed shards are absent (the full-size mask reports coverage).
  std::vector<bool> present(k, false);
  size_t usable = 0;
  for (size_t s = 0; s < response.partials.size(); ++s) {
    present[s] = response.partials[s].status.ok();
    usable += present[s] ? 1 : 0;
  }
  if (usable == 0) return response;
  std::vector<queries::LimitResult> parts;
  parts.reserve(response.partials.size());
  for (const auto& p : response.partials) parts.push_back(p.limit);
  response.merged.limit = queries::MergeLimitsDegraded(
      parts, offsets, sizes, present, spec.want, &response.quality);
  response.degraded_gather = response.quality.absent > 0;
  return response;
}

double ShardedServer::HedgeDelayMs() const {
  std::vector<double> history;
  {
    std::lock_guard<std::mutex> lock(latency_mu_);
    history = recent_latency_ms_;
  }
  if (history.empty()) return options_.hedge.min_delay_ms;
  std::sort(history.begin(), history.end());
  const double q = std::clamp(options_.hedge.delay_quantile, 0.0, 1.0);
  const size_t idx = std::min(
      history.size() - 1,
      static_cast<size_t>(q * static_cast<double>(history.size())));
  return std::max(history[idx], options_.hedge.min_delay_ms);
}

void ShardedServer::RecordShardLatency(double ms) {
  constexpr size_t kLatencyHistory = 128;
  std::lock_guard<std::mutex> lock(latency_mu_);
  if (recent_latency_ms_.size() < kLatencyHistory) {
    recent_latency_ms_.push_back(ms);
  } else {
    recent_latency_ms_[latency_cursor_] = ms;
    latency_cursor_ = (latency_cursor_ + 1) % kLatencyHistory;
  }
}

void ShardedServer::FoldAccounting(ShardedQueryResponse* response) {
  serve::QueryResponse& merged = response->merged;
  for (size_t s = 0; s < response->partials.size(); ++s) {
    const serve::QueryResponse& partial = response->partials[s];
    merged.epoch = std::max(merged.epoch, partial.epoch);
    merged.attributed_invocations += partial.attributed_invocations;
    merged.logical_oracle_calls += partial.logical_oracle_calls;
    merged.scheduler_cache_hits += partial.scheduler_cache_hits;
    merged.scheduler_dedup_hits += partial.scheduler_dedup_hits;
    merged.cracked_representatives += partial.cracked_representatives;
    merged.proxy_delta_rows += partial.proxy_delta_rows;
    merged.queue_wait_ms = std::max(merged.queue_wait_ms, partial.queue_wait_ms);
    const bool complete =
        s < response->shard_complete.size() && response->shard_complete[s];
    // A degraded gather already absorbed absent shards into the widened
    // interval, so their failure statuses are informational; otherwise
    // the first failure fails the whole query (legacy semantics).
    if (!response->degraded_gather && merged.status.ok() &&
        !partial.status.ok()) {
      merged.status = partial.status;
    }
    if (complete) {
      merged.degraded = merged.degraded || partial.degraded;
      merged.deadline_hit = merged.deadline_hit || partial.deadline_hit;
      merged.guarantee = std::max(merged.guarantee, partial.guarantee);
      merged.deadline_spent_ms =
          std::max(merged.deadline_spent_ms, partial.deadline_spent_ms);
      merged.deadline_budget_ms =
          std::max(merged.deadline_budget_ms, partial.deadline_budget_ms);
    }
  }
  if (response->degraded_gather) {
    merged.degraded = true;
    merged.guarantee = std::max(merged.guarantee, serve::GuaranteeLevel::kReduced);
  }
}

void ShardedServer::Drain() {
  for (auto& server : servers_) server->Drain();
}

void ShardedServer::Shutdown() {
  for (auto& server : servers_) server->Shutdown();
}

size_t ShardedServer::AppendRecords(const nn::Matrix& features) {
  std::lock_guard<std::mutex> lock(partition_mu_);
  const size_t last = num_shards() - 1;
  const size_t local_first = servers_[last]->AppendRecords(features);
  const size_t global_first = partitioner_.ToGlobal(last, local_first);
  partitioner_.ExtendLastShard(features.rows());
  return global_first;
}

serve::ServerStats ShardedServer::stats() const {
  serve::ServerStats total;
  for (const auto& server : servers_) {
    const serve::ServerStats s = server->stats();
    total.queries_submitted += s.queries_submitted;
    total.queries_completed += s.queries_completed;
    total.index_invocations += s.index_invocations;
    total.query_invocations += s.query_invocations;
    total.epochs_published += s.epochs_published;
    total.live_snapshots += s.live_snapshots;
    total.queries_shed += s.queries_shed;
    total.degraded_responses += s.degraded_responses;
    total.deadline_expired += s.deadline_expired;
    total.brownout_queries += s.brownout_queries;
    total.brownout_active = total.brownout_active || s.brownout_active;
  }
  return total;
}

std::vector<uint64_t> ShardedServer::shard_epochs() const {
  std::vector<uint64_t> epochs;
  epochs.reserve(servers_.size());
  for (const auto& server : servers_) {
    epochs.push_back(server->current_epoch());
  }
  return epochs;
}

Status ShardedServer::CheckAttributionInvariant() const {
  size_t view_invocations = 0;
  for (size_t s = 0; s < servers_.size(); ++s) {
    const Status status = servers_[s]->CheckAttributionInvariant();
    if (!status.ok()) {
      return Status::Internal("shard " + std::to_string(s) + ": " +
                              status.message());
    }
    view_invocations += views_[s]->invocations();
  }
  // Every view call forwards to exactly one oracle call (FallibleLabeler
  // counts every TryLabel), so the per-shard ledgers must tile the
  // dataset-wide count exactly.
  const size_t oracle_delta = oracle_->invocations() - baseline_invocations_;
  if (view_invocations != oracle_delta) {
    return Status::Internal(
        "cross-shard attribution mismatch: shard views saw " +
        std::to_string(view_invocations) + " calls, oracle saw " +
        std::to_string(oracle_delta));
  }
  return Status::OK();
}

Result<std::string> ShardedServer::SerializeIndex() const {
  std::string blob = "TASTI-SHARDS v1\n";
  blob += std::to_string(servers_.size());
  blob += '\n';
  for (const auto& server : servers_) {
    Result<std::string> part = server->SerializeIndex();
    if (!part.ok()) return part.status();
    blob += std::to_string(part.value().size());
    blob += '\n';
    blob += part.value();
  }
  return blob;
}

}  // namespace tasti::shard
