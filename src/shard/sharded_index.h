#ifndef TASTI_SHARD_SHARDED_INDEX_H_
#define TASTI_SHARD_SHARDED_INDEX_H_

/// \file sharded_index.h
/// ShardedIndex: K independent TASTI indexes over contiguous record
/// ranges (core/partition.h), built in parallel on the global ThreadPool.
///
/// Sharding is the scale step after one box saturates: each shard embeds,
/// clusters, and propagates over only its own records, so construction
/// parallelizes across shards and a crack republish touches one shard's
/// top-k structure instead of every record in the dataset. Global record
/// ids stay stable — shard s owns [ShardBegin(s), ShardEnd(s)) and local
/// ids are globals minus the shard offset — so callers keep speaking
/// global ids and routing is a binary search.
///
/// Per-shard oracle accounting goes through ShardLabelerView: a shard sees
/// a labeler over its own records that forwards to the dataset-wide oracle
/// with the offset applied, while counting the shard's invocations
/// separately so per-shard cost ledgers and attribution invariants hold.

#include <atomic>
#include <cstddef>
#include <memory>
#include <vector>

#include "core/index.h"
#include "core/partition.h"
#include "data/dataset.h"
#include "labeler/labeler.h"
#include "nn/matrix.h"
#include "util/status.h"

namespace tasti::shard {

/// Copies the [begin, end) record range of `dataset` into a standalone
/// shard-local dataset (ground truth, features, closeness, classes). The
/// shard's name is "<name>.shard<shard>".
data::Dataset SliceDataset(const data::Dataset& dataset, size_t begin,
                           size_t end, size_t shard);

/// A shard's window onto the dataset-wide oracle: local ids [0, size) map
/// to global ids [offset, offset + size). Invocations are counted per view
/// (atomically — views are hit from concurrent shard servers), so each
/// shard's cost ledger is independent; the underlying oracle still counts
/// every call per the FallibleLabeler contract, which is what makes the
/// cross-shard attribution check in ShardedServer exact.
class ShardLabelerView : public labeler::FallibleLabeler {
 public:
  /// The global oracle must outlive the view and be thread-safe when
  /// multiple shards dispatch concurrently.
  ShardLabelerView(labeler::FallibleLabeler* global, size_t offset,
                   size_t size)
      : global_(global), offset_(offset), size_(size) {}

  Result<data::LabelerOutput> TryLabel(size_t index) override {
    invocations_.fetch_add(1, std::memory_order_relaxed);
    return global_->TryLabel(offset_ + index);
  }
  size_t num_records() const override { return size_; }
  size_t invocations() const override {
    return invocations_.load(std::memory_order_relaxed);
  }
  /// Resets only this view's counter; the global oracle keeps counting.
  void ResetInvocations() override {
    invocations_.store(0, std::memory_order_relaxed);
  }
  double last_call_latency_ms() const override {
    return global_->last_call_latency_ms();
  }

  size_t offset() const { return offset_; }

 private:
  labeler::FallibleLabeler* global_;
  size_t offset_;
  size_t size_;
  std::atomic<size_t> invocations_{0};
};

struct ShardedIndexOptions {
  size_t num_shards = 2;
  /// Build shards concurrently on the global ThreadPool (each shard's
  /// inner parallelism then runs inline on its worker). Off = one shard at
  /// a time, for deterministic debugging of a single shard.
  bool parallel_build = true;
  /// Divide num_representatives / num_training_records by K (floor 1 and
  /// 8 respectively) so the K-shard construction spends the same total
  /// oracle budget as K=1 would, instead of K times it.
  bool scale_index_budgets = true;
  /// Per-shard construction parameters; shard s builds with seed
  /// `index.seed + s` so shards are independent but reproducible.
  core::IndexOptions index;
};

/// Per-shard construction cost plus the parallel wall time (the point of
/// the exercise: wall_seconds ~ max over shards, not the sum).
struct ShardedBuildStats {
  std::vector<core::BuildStats> per_shard;
  double wall_seconds = 0.0;

  size_t TotalInvocations() const;
  double SumBuildSeconds() const;
};

/// K per-shard TASTI indexes behind one global-id facade. Not thread-safe
/// for mutation (callers serialize cracks/appends, as with TastiIndex);
/// distinct shards may be read concurrently.
class ShardedIndex {
 public:
  /// The dataset must outlive the index. Slices it into
  /// options.num_shards contiguous ranges immediately; Build() does the
  /// expensive work.
  ShardedIndex(const data::Dataset* dataset, ShardedIndexOptions options);

  /// Builds every shard's index against `oracle` (through per-shard
  /// ShardLabelerViews). With parallel_build, shards build concurrently.
  /// The oracle must be thread-safe in that case.
  Status Build(labeler::FallibleLabeler* oracle);

  size_t num_shards() const { return partitioner_.num_shards(); }
  size_t num_records() const { return partitioner_.num_records(); }
  const core::Partitioner& partitioner() const { return partitioner_; }
  const ShardedIndexOptions& options() const { return options_; }

  /// Shard s's index / sliced dataset / oracle view. Valid after Build().
  core::TastiIndex& shard(size_t s) { return shards_[s]; }
  const core::TastiIndex& shard(size_t s) const { return shards_[s]; }
  const data::Dataset& shard_dataset(size_t s) const {
    return shard_datasets_[s];
  }
  ShardLabelerView* shard_view(size_t s) { return views_[s].get(); }

  const ShardedBuildStats& build_stats() const { return build_stats_; }

  /// Routes annotated records (global ids) to their owning shards and
  /// cracks only those shards — the sharding win: each touched shard
  /// updates min-k lists over its own records, not the whole dataset.
  /// Returns representatives added; `touched_shards` (optional, sorted)
  /// reports which shards republished.
  size_t CrackFromLabels(const std::vector<size_t>& records,
                         const std::vector<data::LabelerOutput>& labels,
                         std::vector<size_t>* touched_shards = nullptr);

  /// Appends new records to the *last* shard (keeps global ids dense) and
  /// extends the partition. Returns the first appended record's global id.
  size_t AppendRecords(const nn::Matrix& features);

  /// True if the record's owning shard holds it as a representative.
  bool IsRepresentative(size_t record_id) const;

  /// Sum of per-shard representative counts.
  size_t num_representatives() const;

 private:
  const data::Dataset* dataset_;
  ShardedIndexOptions options_;
  core::Partitioner partitioner_;
  std::vector<data::Dataset> shard_datasets_;
  std::vector<std::unique_ptr<ShardLabelerView>> views_;
  std::vector<core::TastiIndex> shards_;
  ShardedBuildStats build_stats_;
  bool built_ = false;
};

/// The per-shard IndexOptions ShardedIndex/ShardedServer derive from a
/// template: seed offset by `seed_offset`, budgets divided by `divisor`
/// when scaling is on.
core::IndexOptions ShardIndexOptions(const core::IndexOptions& base,
                                     size_t shard, size_t divisor,
                                     bool scale_budgets);

}  // namespace tasti::shard

#endif  // TASTI_SHARD_SHARDED_INDEX_H_
