#include "obs/query_log.h"

#include <cstdio>

namespace tasti::obs {

void QueryLog::RecordIndexBuild(size_t invocations, double seconds) {
  index_invocations_ += invocations;
  index_build_seconds_ += seconds;
}

void QueryLog::AddQuery(QueryRecord record) {
  using labeler::LabelerKind;
  record.human_dollars =
      cost_model_.LabelCost(LabelerKind::kHuman, record.labeler_invocations);
  record.mask_rcnn_seconds =
      cost_model_.LabelCost(LabelerKind::kMaskRCnn, record.labeler_invocations);
  record.ssd_seconds =
      cost_model_.LabelCost(LabelerKind::kSsd, record.labeler_invocations);
  queries_.push_back(std::move(record));
}

size_t QueryLog::total_invocations() const {
  size_t total = index_invocations_;
  for (const QueryRecord& query : queries_) {
    total += query.labeler_invocations;
  }
  return total;
}

double QueryLog::total_query_seconds() const {
  double total = 0.0;
  for (const QueryRecord& query : queries_) {
    total += query.phases.TotalSeconds();
  }
  return total;
}

void QueryLog::Clear() {
  index_invocations_ = 0;
  index_build_seconds_ = 0.0;
  queries_.clear();
}

namespace {
void AppendEscaped(const std::string& s, std::string* out) {
  for (char c : s) {
    if (c == '"' || c == '\\') out->push_back('\\');
    out->push_back(c);
  }
}

std::string Fmt(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  return buf;
}
}  // namespace

std::string QueryLog::ToJson() const {
  std::string out;
  out += "{\n  \"index\": {\"labeler_invocations\": " +
         std::to_string(index_invocations_) +
         ", \"build_seconds\": " + Fmt(index_build_seconds_) + "},\n";
  out += "  \"queries\": [\n";
  for (size_t i = 0; i < queries_.size(); ++i) {
    const QueryRecord& q = queries_[i];
    out += "    {\"query_type\": \"";
    AppendEscaped(q.query_type, &out);
    out += "\", \"params\": \"";
    AppendEscaped(q.params, &out);
    out += "\",\n     \"labeler_invocations\": " +
           std::to_string(q.labeler_invocations) +
           ", \"cracked_representatives\": " +
           std::to_string(q.cracked_representatives) +
           ", \"failed_oracle_calls\": " +
           std::to_string(q.failed_oracle_calls) +
           ", \"repaired_representatives\": " +
           std::to_string(q.repaired_representatives) +
           ", \"proxy_source\": \"";
    AppendEscaped(q.proxy_source, &out);
    out += "\", \"proxy_delta_rows\": " +
           std::to_string(q.proxy_delta_rows) + ",\n";
    out += "     \"phase_seconds\": {\"rep_score\": " +
           Fmt(q.phases.rep_score_seconds) +
           ", \"propagation\": " + Fmt(q.phases.propagation_seconds) +
           ", \"algorithm\": " + Fmt(q.phases.algorithm_seconds) +
           ", \"oracle\": " + Fmt(q.phases.oracle_seconds) +
           ", \"crack\": " + Fmt(q.phases.crack_seconds) +
           ", \"total\": " + Fmt(q.phases.TotalSeconds()) + "},\n";
    out += "     \"cost\": {\"human_dollars\": " + Fmt(q.human_dollars) +
           ", \"mask_rcnn_seconds\": " + Fmt(q.mask_rcnn_seconds) +
           ", \"ssd_seconds\": " + Fmt(q.ssd_seconds) + "}}";
    out += i + 1 < queries_.size() ? ",\n" : "\n";
  }
  out += "  ],\n";
  out += "  \"totals\": {\"labeler_invocations\": " +
         std::to_string(total_invocations()) +
         ", \"query_seconds\": " + Fmt(total_query_seconds()) + "}\n}\n";
  return out;
}

Status QueryLog::WriteJson(const std::string& path) const {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return Status::IOError("cannot open " + path);
  const std::string json = ToJson();
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (written != json.size()) return Status::IOError("short write to " + path);
  return Status::OK();
}

}  // namespace tasti::obs
