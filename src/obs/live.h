#ifndef TASTI_OBS_LIVE_H_
#define TASTI_OBS_LIVE_H_

/// \file live.h
/// Live telemetry primitives for the serving path: sliding-window quantile
/// sketches, multi-window SLO burn-rate tracking, a bounded flight
/// recorder for slow-query forensics, and a Prometheus-style text
/// exposition over MetricsRegistry + derived live stats.
///
/// Everything here is driven by an injectable Clock, so tests advance a
/// ManualClock instead of sleeping: window rotation, burn-rate decay, and
/// alert cooldowns are all deterministic functions of the observed
/// timestamps (DESIGN.md §12).

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/status.h"

namespace tasti::obs {

// ---------------------------------------------------------------------------
// Clocks

/// Seconds-valued clock; the live-telemetry analogue of the virtual clock
/// in labeler::ResilientLabeler. Implementations must be thread-safe.
class Clock {
 public:
  virtual ~Clock() = default;
  virtual double NowSeconds() const = 0;
};

/// Real time on the steady clock (seconds since construction).
class SteadyClock : public Clock {
 public:
  SteadyClock();
  double NowSeconds() const override;

 private:
  int64_t epoch_ns_;
};

/// Test clock advanced explicitly.
class ManualClock : public Clock {
 public:
  explicit ManualClock(double start_seconds = 0.0) : now_(start_seconds) {}
  double NowSeconds() const override {
    return now_.load(std::memory_order_relaxed);
  }
  void Advance(double seconds) {
    now_.fetch_add(seconds, std::memory_order_relaxed);
  }
  void Set(double seconds) { now_.store(seconds, std::memory_order_relaxed); }

 private:
  std::atomic<double> now_;
};

// ---------------------------------------------------------------------------
// Sliding-window quantile sketch

/// Merged view of the slots inside the window at snapshot time.
struct WindowSnapshot {
  std::vector<double> upper_bounds;   // finite bounds
  std::vector<uint64_t> buckets;      // upper_bounds.size() + 1 (+inf last)
  uint64_t count = 0;
  double sum = 0.0;

  double Quantile(double q) const {
    return QuantileFromBuckets(upper_bounds, buckets.data(), count, q);
  }
  double mean() const {
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }
};

/// Quantile estimates over a sliding time window.
///
/// A ring of `num_slots` fixed-bucket histograms; slot s covers the time
/// interval [s*slot_seconds, (s+1)*slot_seconds). Observe() hashes the
/// observation's timestamp to its absolute slot index; if the ring
/// position holds a stale slot (an earlier rotation), it is zeroed and
/// reused — old data ages out slot by slot with no background thread.
/// Snapshot() merges the slots whose interval overlaps
/// [now - window, now]. The mutex guards only bucket bumps and merges
/// (microseconds), which keeps the sketch lock-cheap at serving rates.
class SlidingQuantileSketch {
 public:
  /// `upper_bounds` as for Histogram (strictly increasing; +inf implicit).
  /// The covered window is num_slots * slot_seconds.
  SlidingQuantileSketch(std::vector<double> upper_bounds, double slot_seconds,
                        size_t num_slots);

  void Observe(double value, double now_seconds);

  /// Merges every slot still inside the window ending at `now_seconds`.
  WindowSnapshot Snapshot(double now_seconds) const;

  double window_seconds() const {
    return slot_seconds_ * static_cast<double>(slots_.size());
  }

 private:
  struct Slot {
    int64_t index = -1;  // absolute slot index, -1 = never written
    std::vector<uint64_t> buckets;
    uint64_t count = 0;
    double sum = 0.0;
  };

  int64_t SlotIndex(double now_seconds) const;

  const std::vector<double> upper_bounds_;
  const double slot_seconds_;
  mutable std::mutex mu_;
  std::vector<Slot> slots_;
};

// ---------------------------------------------------------------------------
// SLO tracking with multi-window burn rates

/// The objectives a TastiServer SLO covers. Each is expressed as a target
/// fraction of good events; the error budget is 1 - target.
enum class SloObjective {
  kLatency,       // query latency <= latency_threshold_ms
  kErrors,        // query status ok
  kOracleBudget,  // attributed oracle invocations <= budget per query
  kIndexDrift,    // drift ratio below threshold (event = epoch publish)
};

const char* SloObjectiveName(SloObjective objective);

struct SloConfig {
  double latency_threshold_ms = 250.0;
  double latency_target = 0.99;  // fraction of queries under the threshold
  double error_target = 0.999;   // fraction of queries returning ok
  /// Per-query oracle invocation budget; 0 disables the objective.
  double oracle_budget_per_query = 0.0;
  double oracle_budget_target = 0.95;

  /// Multi-window burn-rate evaluation (fast + slow window must both
  /// burn): the fast window catches the regression quickly, the slow
  /// window keeps one bad burst from paging.
  double fast_window_seconds = 300.0;    // 5 min
  double slow_window_seconds = 3600.0;   // 1 hr
  /// Alert when burn = bad_fraction / error_budget meets this in both
  /// windows (burn 1.0 = exactly consuming budget at the sustainable
  /// rate).
  double burn_rate_threshold = 2.0;
  /// The fast window needs at least this many events before it can alert
  /// (suppresses single-query noise at startup).
  uint64_t min_events = 5;
  /// Re-arm delay per objective after an alert fires.
  double alert_cooldown_seconds = 60.0;
};

/// Structured alert raised by the SLO tracker (and by the server monitor
/// for fault / breaker events).
struct Alert {
  SloObjective objective = SloObjective::kErrors;
  std::string message;
  double fired_at_seconds = 0.0;
  double burn_fast = 0.0;
  double burn_slow = 0.0;
};

/// Burn rates for one objective at evaluation time.
struct BurnRates {
  double fast = 0.0;
  double slow = 0.0;
  uint64_t fast_events = 0;
  uint64_t slow_events = 0;
};

/// Tracks good/bad events per objective in fast and slow sliding windows
/// and raises Alerts on sustained burn. Thread-safe; time comes from the
/// caller so tests are deterministic.
class SloTracker {
 public:
  explicit SloTracker(SloConfig config);

  /// Classifies one completed query against every enabled objective.
  void RecordQuery(double now_seconds, double latency_ms, bool ok,
                   uint64_t oracle_invocations);

  /// Records an explicit good/bad event for an objective (used by the
  /// index-drift monitor, whose events are epoch publishes, not queries).
  void RecordEvent(SloObjective objective, bool bad, double now_seconds);

  /// Current burn rates for an objective.
  BurnRates Burn(SloObjective objective, double now_seconds) const;

  /// Drains alerts raised since the last call.
  std::vector<Alert> TakeAlerts();

  uint64_t alerts_raised() const;
  const SloConfig& config() const { return config_; }

 private:
  /// Good/bad counts in a sliding window, same slot-ring design as the
  /// quantile sketch.
  struct SlidingCounter {
    struct Slot {
      int64_t index = -1;
      uint64_t good = 0;
      uint64_t bad = 0;
    };
    double slot_seconds = 0.0;
    std::vector<Slot> slots;

    void Init(double window_seconds, size_t num_slots);
    void Record(bool bad, double now_seconds);
    void Totals(double now_seconds, uint64_t* good, uint64_t* bad) const;
  };

  struct Objective {
    bool enabled = false;
    double error_budget = 0.0;
    SlidingCounter fast;
    SlidingCounter slow;
    double last_alert_seconds = -1.0;
  };

  void RecordLocked(SloObjective objective, bool bad, double now_seconds);
  void EvaluateLocked(SloObjective objective, double now_seconds);
  BurnRates BurnLocked(const Objective& state, double now_seconds) const;

  const SloConfig config_;
  mutable std::mutex mu_;
  std::array<Objective, 4> objectives_;
  std::vector<Alert> pending_;
  uint64_t alerts_raised_ = 0;
};

// ---------------------------------------------------------------------------
// Flight recorder

/// Bounded per-thread rings of recent spans — a "black box" that is cheap
/// enough to leave on in production (fixed memory, no growth) and is only
/// serialized when something goes wrong. Spans arrive via obs::Span when
/// kSpanSinkFlight is set; timestamps share TraceRecorder::Global()'s
/// epoch so flight dumps and full traces line up.
class FlightRecorder {
 public:
  static constexpr size_t kDefaultCapacityPerThread = 2048;

  explicit FlightRecorder(size_t capacity_per_thread = kDefaultCapacityPerThread);
  ~FlightRecorder();

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Process-wide recorder targeted by Span (leaked, like
  /// TraceRecorder::Global()).
  static FlightRecorder& Global();

  /// Appends one completed span to the calling thread's ring (overwrites
  /// the oldest entry when full).
  void Record(const char* name, int64_t ts_us, int64_t dur_us);

  /// Merged copy of every ring, ordered by timestamp (ties: longer span
  /// first, so parents precede children).
  std::vector<TraceEvent> Snapshot() const;

  /// Events currently buffered across all rings.
  size_t event_count() const;

  size_t capacity_per_thread() const { return capacity_; }

  void Clear();

  /// Chrome trace_event JSON using "B"/"E" begin/end pairs plus one "i"
  /// instant event named "flight.dump" carrying `reason` — the shape
  /// tools/validate_trace --flight checks.
  std::string ToChromeJson(const std::string& reason) const;

  /// Writes ToChromeJson(reason) to `path`.
  Status Dump(const std::string& path, const std::string& reason) const;

 private:
  struct Ring {
    mutable std::mutex mu;
    std::vector<TraceEvent> events;  // capacity_ entries once saturated
    size_t next = 0;                 // overwrite cursor
    std::thread::id owner;
    uint32_t tid = 0;
  };

  Ring* RingForThisThread();

  const size_t capacity_;
  const uint64_t recorder_id_;
  mutable std::mutex mu_;  // guards rings_ (the list, not the contents)
  std::vector<std::unique_ptr<Ring>> rings_;
  uint32_t next_tid_ = 1;
};

// ---------------------------------------------------------------------------
// Prometheus-style exposition

/// One derived sample computed outside MetricsRegistry (quantiles, burn
/// rates, health ratios). `labels` become Prometheus labels.
struct LiveSample {
  std::string name;  // full family name, e.g. "tasti_query_latency_ms"
  std::vector<std::pair<std::string, std::string>> labels;
  double value = 0.0;
  char type = 'g';  // 'g' gauge, 'c' counter
  std::string help;  // optional; first sample of a family wins
};

/// Bag of derived samples, typically filled by serve::ServerMonitor.
struct LiveStats {
  std::vector<LiveSample> samples;

  void Add(std::string name, double value,
           std::vector<std::pair<std::string, std::string>> labels = {},
           char type = 'g', std::string help = "") {
    samples.push_back(LiveSample{std::move(name), std::move(labels), value,
                                 type, std::move(help)});
  }
};

/// Prometheus text-exposition (version 0.0.4) rendering of every registry
/// instrument plus the derived live samples. Registry metric names are
/// sanitized ("serve.queue_wait_ms" -> "tasti_serve_queue_wait_ms");
/// histogram buckets are emitted cumulatively with a final +Inf bucket as
/// the format requires.
std::string WriteExposition(const MetricsRegistry& registry,
                            const LiveStats& live);

/// Writes WriteExposition() to `path`.
Status WriteExpositionFile(const MetricsRegistry& registry,
                           const LiveStats& live, const std::string& path);

}  // namespace tasti::obs

#endif  // TASTI_OBS_LIVE_H_
