#include "obs/live.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>

namespace tasti::obs {

namespace {
// Floor modulus: safe for negative slot indexes (a ManualClock may run
// from an arbitrary origin).
size_t RingPosition(int64_t index, size_t n) {
  const int64_t size = static_cast<int64_t>(n);
  return static_cast<size_t>(((index % size) + size) % size);
}
}  // namespace

// ---------------------------------------------------------------------------
// Clocks

SteadyClock::SteadyClock()
    : epoch_ns_(std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now().time_since_epoch())
                    .count()) {}

double SteadyClock::NowSeconds() const {
  const int64_t now_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                             std::chrono::steady_clock::now().time_since_epoch())
                             .count();
  return static_cast<double>(now_ns - epoch_ns_) * 1e-9;
}

// ---------------------------------------------------------------------------
// SlidingQuantileSketch

SlidingQuantileSketch::SlidingQuantileSketch(std::vector<double> upper_bounds,
                                             double slot_seconds,
                                             size_t num_slots)
    : upper_bounds_(std::move(upper_bounds)),
      slot_seconds_(slot_seconds),
      slots_(num_slots) {
  TASTI_CHECK(!upper_bounds_.empty(), "sketch needs at least one bound");
  TASTI_CHECK(std::is_sorted(upper_bounds_.begin(), upper_bounds_.end()),
              "sketch bucket bounds must be increasing");
  TASTI_CHECK(slot_seconds_ > 0.0 && num_slots > 0, "bad sketch window spec");
  for (Slot& slot : slots_) slot.buckets.assign(upper_bounds_.size() + 1, 0);
}

int64_t SlidingQuantileSketch::SlotIndex(double now_seconds) const {
  return static_cast<int64_t>(std::floor(now_seconds / slot_seconds_));
}

void SlidingQuantileSketch::Observe(double value, double now_seconds) {
  const int64_t index = SlotIndex(now_seconds);
  const size_t bucket =
      std::lower_bound(upper_bounds_.begin(), upper_bounds_.end(), value) -
      upper_bounds_.begin();
  std::unique_lock<std::mutex> lock(mu_);
  Slot& slot = slots_[RingPosition(index, slots_.size())];
  if (slot.index != index) {
    // The ring position holds data from a previous rotation: reuse it.
    std::fill(slot.buckets.begin(), slot.buckets.end(), 0);
    slot.count = 0;
    slot.sum = 0.0;
    slot.index = index;
  }
  slot.buckets[bucket] += 1;
  slot.count += 1;
  slot.sum += value;
}

WindowSnapshot SlidingQuantileSketch::Snapshot(double now_seconds) const {
  const int64_t newest = SlotIndex(now_seconds);
  const int64_t oldest = newest - static_cast<int64_t>(slots_.size()) + 1;
  WindowSnapshot snap;
  snap.upper_bounds = upper_bounds_;
  snap.buckets.assign(upper_bounds_.size() + 1, 0);
  std::unique_lock<std::mutex> lock(mu_);
  for (const Slot& slot : slots_) {
    if (slot.index < oldest || slot.index > newest) continue;  // expired
    for (size_t b = 0; b < snap.buckets.size(); ++b) {
      snap.buckets[b] += slot.buckets[b];
    }
    snap.count += slot.count;
    snap.sum += slot.sum;
  }
  return snap;
}

// ---------------------------------------------------------------------------
// SloTracker

const char* SloObjectiveName(SloObjective objective) {
  switch (objective) {
    case SloObjective::kLatency:
      return "latency";
    case SloObjective::kErrors:
      return "errors";
    case SloObjective::kOracleBudget:
      return "oracle_budget";
    case SloObjective::kIndexDrift:
      return "index_drift";
  }
  return "unknown";
}

namespace {
// Slot count for the burn-rate windows: enough resolution that events age
// out smoothly, few enough that merges stay trivial.
constexpr size_t kBurnSlots = 30;

size_t ObjectiveIdx(SloObjective objective) {
  return static_cast<size_t>(objective);
}
}  // namespace

void SloTracker::SlidingCounter::Init(double window_seconds,
                                      size_t num_slots) {
  slot_seconds = window_seconds / static_cast<double>(num_slots);
  slots.assign(num_slots, Slot{});
}

void SloTracker::SlidingCounter::Record(bool bad, double now_seconds) {
  const int64_t index =
      static_cast<int64_t>(std::floor(now_seconds / slot_seconds));
  Slot& slot = slots[RingPosition(index, slots.size())];
  if (slot.index != index) {
    slot.good = 0;
    slot.bad = 0;
    slot.index = index;
  }
  (bad ? slot.bad : slot.good) += 1;
}

void SloTracker::SlidingCounter::Totals(double now_seconds, uint64_t* good,
                                        uint64_t* bad) const {
  const int64_t newest =
      static_cast<int64_t>(std::floor(now_seconds / slot_seconds));
  const int64_t oldest = newest - static_cast<int64_t>(slots.size()) + 1;
  *good = 0;
  *bad = 0;
  for (const Slot& slot : slots) {
    if (slot.index < oldest || slot.index > newest) continue;
    *good += slot.good;
    *bad += slot.bad;
  }
}

SloTracker::SloTracker(SloConfig config) : config_(config) {
  TASTI_CHECK(config_.fast_window_seconds > 0.0 &&
                  config_.slow_window_seconds >= config_.fast_window_seconds,
              "SLO windows must be positive with slow >= fast");
  const auto enable = [&](SloObjective objective, double target) {
    Objective& state = objectives_[ObjectiveIdx(objective)];
    TASTI_CHECK(target > 0.0 && target < 1.0,
                "SLO target must be in (0, 1)");
    state.enabled = true;
    state.error_budget = 1.0 - target;
    state.fast.Init(config_.fast_window_seconds, kBurnSlots);
    state.slow.Init(config_.slow_window_seconds, kBurnSlots);
  };
  enable(SloObjective::kLatency, config_.latency_target);
  enable(SloObjective::kErrors, config_.error_target);
  if (config_.oracle_budget_per_query > 0.0) {
    enable(SloObjective::kOracleBudget, config_.oracle_budget_target);
  }
  // Drift events are epoch publishes — reuse the error target as budget.
  enable(SloObjective::kIndexDrift, config_.error_target);
}

void SloTracker::RecordQuery(double now_seconds, double latency_ms, bool ok,
                             uint64_t oracle_invocations) {
  std::unique_lock<std::mutex> lock(mu_);
  RecordLocked(SloObjective::kLatency,
               latency_ms > config_.latency_threshold_ms, now_seconds);
  RecordLocked(SloObjective::kErrors, !ok, now_seconds);
  if (objectives_[ObjectiveIdx(SloObjective::kOracleBudget)].enabled) {
    RecordLocked(SloObjective::kOracleBudget,
                 static_cast<double>(oracle_invocations) >
                     config_.oracle_budget_per_query,
                 now_seconds);
  }
}

void SloTracker::RecordEvent(SloObjective objective, bool bad,
                             double now_seconds) {
  std::unique_lock<std::mutex> lock(mu_);
  RecordLocked(objective, bad, now_seconds);
}

void SloTracker::RecordLocked(SloObjective objective, bool bad,
                              double now_seconds) {
  Objective& state = objectives_[ObjectiveIdx(objective)];
  if (!state.enabled) return;
  state.fast.Record(bad, now_seconds);
  state.slow.Record(bad, now_seconds);
  if (bad) EvaluateLocked(objective, now_seconds);
}

BurnRates SloTracker::BurnLocked(const Objective& state,
                                 double now_seconds) const {
  BurnRates burn;
  uint64_t good = 0, bad = 0;
  state.fast.Totals(now_seconds, &good, &bad);
  burn.fast_events = good + bad;
  if (burn.fast_events > 0) {
    burn.fast = (static_cast<double>(bad) /
                 static_cast<double>(burn.fast_events)) /
                state.error_budget;
  }
  state.slow.Totals(now_seconds, &good, &bad);
  burn.slow_events = good + bad;
  if (burn.slow_events > 0) {
    burn.slow = (static_cast<double>(bad) /
                 static_cast<double>(burn.slow_events)) /
                state.error_budget;
  }
  return burn;
}

void SloTracker::EvaluateLocked(SloObjective objective, double now_seconds) {
  Objective& state = objectives_[ObjectiveIdx(objective)];
  const BurnRates burn = BurnLocked(state, now_seconds);
  if (burn.fast_events < config_.min_events) return;
  if (burn.fast < config_.burn_rate_threshold ||
      burn.slow < config_.burn_rate_threshold) {
    return;
  }
  if (state.last_alert_seconds >= 0.0 &&
      now_seconds - state.last_alert_seconds <
          config_.alert_cooldown_seconds) {
    return;
  }
  state.last_alert_seconds = now_seconds;
  Alert alert;
  alert.objective = objective;
  alert.fired_at_seconds = now_seconds;
  alert.burn_fast = burn.fast;
  alert.burn_slow = burn.slow;
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "slo burn: objective=%s fast=%.2fx slow=%.2fx threshold=%.2fx",
                SloObjectiveName(objective), burn.fast, burn.slow,
                config_.burn_rate_threshold);
  alert.message = buf;
  pending_.push_back(std::move(alert));
  alerts_raised_ += 1;
}

BurnRates SloTracker::Burn(SloObjective objective, double now_seconds) const {
  std::unique_lock<std::mutex> lock(mu_);
  return BurnLocked(objectives_[ObjectiveIdx(objective)], now_seconds);
}

std::vector<Alert> SloTracker::TakeAlerts() {
  std::unique_lock<std::mutex> lock(mu_);
  std::vector<Alert> out;
  out.swap(pending_);
  return out;
}

uint64_t SloTracker::alerts_raised() const {
  std::unique_lock<std::mutex> lock(mu_);
  return alerts_raised_;
}

// ---------------------------------------------------------------------------
// FlightRecorder

namespace {
std::atomic<uint64_t> g_next_flight_id{1};

thread_local uint64_t t_cached_flight_id = 0;
thread_local void* t_cached_ring = nullptr;
}  // namespace

FlightRecorder::FlightRecorder(size_t capacity_per_thread)
    : capacity_(capacity_per_thread),
      recorder_id_(g_next_flight_id.fetch_add(1, std::memory_order_relaxed)) {
  TASTI_CHECK(capacity_ > 0, "flight recorder needs a positive capacity");
}

FlightRecorder::~FlightRecorder() = default;

FlightRecorder& FlightRecorder::Global() {
  // Leaked deliberately, matching TraceRecorder::Global().
  static FlightRecorder* recorder = new FlightRecorder();
  return *recorder;
}

FlightRecorder::Ring* FlightRecorder::RingForThisThread() {
  if (t_cached_flight_id == recorder_id_) {
    return static_cast<Ring*>(t_cached_ring);
  }
  const std::thread::id self = std::this_thread::get_id();
  std::unique_lock<std::mutex> lock(mu_);
  Ring* ring = nullptr;
  for (const auto& existing : rings_) {
    if (existing->owner == self) {
      ring = existing.get();
      break;
    }
  }
  if (ring == nullptr) {
    rings_.push_back(std::make_unique<Ring>());
    ring = rings_.back().get();
    ring->owner = self;
    ring->tid = next_tid_++;
    ring->events.reserve(capacity_);
  }
  // Cache only for the global recorder (its rings are never freed); test
  // instances take the registry walk every time.
  if (this == &Global()) {
    t_cached_flight_id = recorder_id_;
    t_cached_ring = ring;
  }
  return ring;
}

void FlightRecorder::Record(const char* name, int64_t ts_us, int64_t dur_us) {
  Ring* ring = RingForThisThread();
  std::unique_lock<std::mutex> lock(ring->mu);
  const TraceEvent event{name, ts_us, dur_us, ring->tid};
  if (ring->events.size() < capacity_) {
    ring->events.push_back(event);
  } else {
    ring->events[ring->next] = event;
  }
  ring->next = (ring->next + 1) % capacity_;
}

std::vector<TraceEvent> FlightRecorder::Snapshot() const {
  std::vector<TraceEvent> merged;
  {
    std::unique_lock<std::mutex> lock(mu_);
    for (const auto& ring : rings_) {
      std::unique_lock<std::mutex> ring_lock(ring->mu);
      merged.insert(merged.end(), ring->events.begin(), ring->events.end());
    }
  }
  std::sort(merged.begin(), merged.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.ts_us != b.ts_us) return a.ts_us < b.ts_us;
              return a.dur_us > b.dur_us;  // parents before children
            });
  return merged;
}

size_t FlightRecorder::event_count() const {
  std::unique_lock<std::mutex> lock(mu_);
  size_t count = 0;
  for (const auto& ring : rings_) {
    std::unique_lock<std::mutex> ring_lock(ring->mu);
    count += ring->events.size();
  }
  return count;
}

void FlightRecorder::Clear() {
  std::unique_lock<std::mutex> lock(mu_);
  for (const auto& ring : rings_) {
    std::unique_lock<std::mutex> ring_lock(ring->mu);
    ring->events.clear();
    ring->next = 0;
  }
}

std::string FlightRecorder::ToChromeJson(const std::string& reason) const {
  const std::vector<TraceEvent> events = Snapshot();
  std::string out;
  out.reserve(events.size() * 160 + 256);
  out += "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
  // Instant metadata event first: names the dump trigger so a directory
  // of flight dumps is self-describing.
  out += "  {\"name\": \"flight.dump\", \"cat\": \"tasti\", \"ph\": \"i\", "
         "\"ts\": 0, \"s\": \"g\", \"pid\": 1, \"tid\": 0, \"args\": "
         "{\"reason\": \"";
  internal::AppendJsonEscaped(reason.c_str(), &out);
  out += "\"}}";

  // Ring truncation can orphan a child span's parent, so "X" events are
  // the wrong shape here; instead each span becomes an explicit B/E pair,
  // reconstructed per thread. Within a thread RAII spans nest properly,
  // and the snapshot is (ts asc, dur desc)-sorted, so a stack walk emits
  // well-formed pairs in timestamp order.
  char line[192];
  const auto emit = [&](char ph, const char* name, int64_t ts, uint32_t tid) {
    out += ",\n  {\"name\": \"";
    internal::AppendJsonEscaped(name, &out);
    std::snprintf(line, sizeof(line),
                  "\", \"cat\": \"tasti\", \"ph\": \"%c\", \"ts\": %lld, "
                  "\"pid\": 1, \"tid\": %u}",
                  ph, static_cast<long long>(ts), tid);
    out += line;
  };
  std::vector<uint32_t> tids;
  for (const TraceEvent& event : events) {
    if (std::find(tids.begin(), tids.end(), event.tid) == tids.end()) {
      tids.push_back(event.tid);
    }
  }
  std::sort(tids.begin(), tids.end());
  struct Open {
    const char* name;
    int64_t end_us;
    uint32_t tid;
  };
  for (uint32_t tid : tids) {
    std::vector<Open> stack;
    for (const TraceEvent& event : events) {
      if (event.tid != tid) continue;
      while (!stack.empty() && stack.back().end_us <= event.ts_us) {
        emit('E', stack.back().name, stack.back().end_us, tid);
        stack.pop_back();
      }
      emit('B', event.name, event.ts_us, tid);
      stack.push_back(Open{event.name, event.ts_us + event.dur_us, tid});
    }
    while (!stack.empty()) {
      emit('E', stack.back().name, stack.back().end_us, tid);
      stack.pop_back();
    }
  }
  out += "\n]}\n";
  return out;
}

Status FlightRecorder::Dump(const std::string& path,
                            const std::string& reason) const {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return Status::IOError("cannot open " + path);
  const std::string json = ToChromeJson(reason);
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (written != json.size()) return Status::IOError("short write to " + path);
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Exposition

namespace {

// Prometheus metric names allow [a-zA-Z0-9_:]; registry names use dots.
std::string SanitizeMetricName(const std::string& name) {
  std::string out;
  out.reserve(name.size() + 6);
  if (name.rfind("tasti_", 0) != 0) out += "tasti_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

void AppendLabelEscaped(const std::string& s, std::string* out) {
  for (char c : s) {
    if (c == '\\' || c == '"') {
      out->push_back('\\');
      out->push_back(c);
    } else if (c == '\n') {
      out->append("\\n");
    } else {
      out->push_back(c);
    }
  }
}

std::string FmtValue(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

void AppendLabels(
    const std::vector<std::pair<std::string, std::string>>& labels,
    std::string* out) {
  if (labels.empty()) return;
  out->push_back('{');
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out->push_back(',');
    *out += labels[i].first;
    *out += "=\"";
    AppendLabelEscaped(labels[i].second, out);
    out->push_back('"');
  }
  out->push_back('}');
}

void AppendTypeLine(const std::string& family, const char* type,
                    const std::string& help, std::vector<std::string>* seen,
                    std::string* out) {
  if (std::find(seen->begin(), seen->end(), family) != seen->end()) return;
  seen->push_back(family);
  if (!help.empty()) {
    *out += "# HELP " + family + " " + help + "\n";
  }
  *out += "# TYPE " + family + " " + type + "\n";
}

}  // namespace

std::string WriteExposition(const MetricsRegistry& registry,
                            const LiveStats& live) {
  std::string out;
  std::vector<std::string> seen_families;

  for (const MetricSample& sample : registry.Samples()) {
    const std::string family = SanitizeMetricName(sample.name);
    switch (sample.kind) {
      case 'c':
        AppendTypeLine(family, "counter", sample.unit, &seen_families, &out);
        out += family + " " + FmtValue(sample.value) + "\n";
        break;
      case 'g':
        AppendTypeLine(family, "gauge", sample.unit, &seen_families, &out);
        out += family + " " + FmtValue(sample.value) + "\n";
        break;
      case 'h': {
        AppendTypeLine(family, "histogram", sample.unit, &seen_families, &out);
        // Internal buckets are per-bucket counts; the format wants
        // cumulative counts ending at +Inf.
        uint64_t cumulative = 0;
        for (size_t b = 0; b < sample.bucket_counts.size(); ++b) {
          cumulative += sample.bucket_counts[b];
          out += family + "_bucket{le=\"";
          out += b < sample.upper_bounds.size()
                     ? FmtValue(sample.upper_bounds[b])
                     : std::string("+Inf");
          out += "\"} " + std::to_string(cumulative) + "\n";
        }
        out += family + "_sum " + FmtValue(sample.sum) + "\n";
        out += family + "_count " + std::to_string(cumulative) + "\n";
        break;
      }
    }
  }

  for (const LiveSample& sample : live.samples) {
    AppendTypeLine(sample.name, sample.type == 'c' ? "counter" : "gauge",
                   sample.help, &seen_families, &out);
    out += sample.name;
    AppendLabels(sample.labels, &out);
    out += " " + FmtValue(sample.value) + "\n";
  }
  return out;
}

Status WriteExpositionFile(const MetricsRegistry& registry,
                           const LiveStats& live, const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return Status::IOError("cannot open " + path);
  const std::string text = WriteExposition(registry, live);
  const size_t written = std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  if (written != text.size()) return Status::IOError("short write to " + path);
  return Status::OK();
}

}  // namespace tasti::obs
