#ifndef TASTI_OBS_CONFIG_H_
#define TASTI_OBS_CONFIG_H_

/// \file config.h
/// Global observability switches.
///
/// Tracing and metrics are off by default and must cost next to nothing
/// while off: every instrumentation site guards itself with one relaxed
/// atomic load and a branch (see Span in trace.h and the TASTI_METRIC_*
/// helpers in metrics.h). The flags are constinit atomics — no static
/// initialization guard on the hot path.

#include <atomic>

namespace tasti::obs {

/// Process-wide observability configuration.
struct Config {
  std::atomic<bool> tracing{false};
  std::atomic<bool> metrics{false};
};

inline constinit Config g_config;

/// One relaxed load: the only cost a disabled span pays.
inline bool TracingEnabled() {
  return g_config.tracing.load(std::memory_order_relaxed);
}

/// One relaxed load: the only cost a disabled metric update pays.
inline bool MetricsEnabled() {
  return g_config.metrics.load(std::memory_order_relaxed);
}

inline void SetTracingEnabled(bool on) {
  g_config.tracing.store(on, std::memory_order_relaxed);
}

inline void SetMetricsEnabled(bool on) {
  g_config.metrics.store(on, std::memory_order_relaxed);
}

/// Convenience: flip both subsystems at once.
inline void EnableAll() {
  SetTracingEnabled(true);
  SetMetricsEnabled(true);
}

inline void DisableAll() {
  SetTracingEnabled(false);
  SetMetricsEnabled(false);
}

}  // namespace tasti::obs

#endif  // TASTI_OBS_CONFIG_H_
