#ifndef TASTI_OBS_CONFIG_H_
#define TASTI_OBS_CONFIG_H_

/// \file config.h
/// Global observability switches.
///
/// Tracing, flight recording, and metrics are off by default and must cost
/// next to nothing while off: every instrumentation site guards itself
/// with one relaxed atomic load and a branch (see Span in trace.h and the
/// metric helpers in metrics.h). The flags are constinit atomics — no
/// static initialization guard on the hot path.
///
/// Spans have two possible sinks, packed into one atomic bitmask so the
/// disabled path still pays exactly one relaxed load:
///  - kSpanSinkTrace: the unbounded TraceRecorder (full tracing; export
///    with --trace),
///  - kSpanSinkFlight: the bounded FlightRecorder ring (always-on "black
///    box" that the serving monitor dumps when an alert fires — see
///    obs/live.h).

#include <atomic>
#include <cstdint>

namespace tasti::obs {

/// Bits of the span-sink mask.
inline constexpr uint32_t kSpanSinkTrace = 1u;
inline constexpr uint32_t kSpanSinkFlight = 2u;

/// Process-wide observability configuration.
struct Config {
  std::atomic<uint32_t> span_sinks{0};
  std::atomic<bool> metrics{false};
};

inline constinit Config g_config;

/// One relaxed load: the only cost a disabled span pays. Nonzero when any
/// span sink (tracing or flight recording) is active.
inline uint32_t SpanSinks() {
  return g_config.span_sinks.load(std::memory_order_relaxed);
}

inline bool TracingEnabled() { return (SpanSinks() & kSpanSinkTrace) != 0; }
inline bool FlightRecordingEnabled() {
  return (SpanSinks() & kSpanSinkFlight) != 0;
}

/// One relaxed load: the only cost a disabled metric update pays.
inline bool MetricsEnabled() {
  return g_config.metrics.load(std::memory_order_relaxed);
}

inline void SetTracingEnabled(bool on) {
  if (on) {
    g_config.span_sinks.fetch_or(kSpanSinkTrace, std::memory_order_relaxed);
  } else {
    g_config.span_sinks.fetch_and(~kSpanSinkTrace, std::memory_order_relaxed);
  }
}

inline void SetFlightRecordingEnabled(bool on) {
  if (on) {
    g_config.span_sinks.fetch_or(kSpanSinkFlight, std::memory_order_relaxed);
  } else {
    g_config.span_sinks.fetch_and(~kSpanSinkFlight, std::memory_order_relaxed);
  }
}

inline void SetMetricsEnabled(bool on) {
  g_config.metrics.store(on, std::memory_order_relaxed);
}

/// Convenience: flip tracing + metrics at once (flight recording is opted
/// into separately — it is a serving-monitor concern, not a trace export).
inline void EnableAll() {
  SetTracingEnabled(true);
  SetMetricsEnabled(true);
}

inline void DisableAll() {
  SetTracingEnabled(false);
  SetMetricsEnabled(false);
  SetFlightRecordingEnabled(false);
}

}  // namespace tasti::obs

#endif  // TASTI_OBS_CONFIG_H_
