#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>

namespace tasti::obs {

Histogram::Histogram(std::vector<double> upper_bounds)
    : upper_bounds_(std::move(upper_bounds)),
      buckets_(upper_bounds_.size() + 1) {
  TASTI_CHECK(std::is_sorted(upper_bounds_.begin(), upper_bounds_.end()),
              "histogram bucket bounds must be increasing");
}

void Histogram::Observe(double value) {
  const size_t bucket =
      std::lower_bound(upper_bounds_.begin(), upper_bounds_.end(), value) -
      upper_bounds_.begin();
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  // No atomic fetch_add for double pre-C++20 on all targets; CAS loop.
  double expected = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(expected, expected + value,
                                     std::memory_order_relaxed)) {
  }
}

double Histogram::Quantile(double q) const {
  std::vector<uint64_t> counts(buckets_.size());
  uint64_t total = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  // Recompute the total from the bucket loads rather than trusting count_:
  // during a live workload the two are updated non-atomically.
  return QuantileFromBuckets(upper_bounds_, counts.data(), total, q);
}

void Histogram::Reset() {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

std::vector<double> ExponentialBuckets(double start, double factor,
                                       size_t count) {
  TASTI_CHECK(start > 0.0 && factor > 1.0, "bad exponential bucket spec");
  std::vector<double> bounds;
  bounds.reserve(count);
  double bound = start;
  for (size_t i = 0; i < count; ++i) {
    bounds.push_back(bound);
    bound *= factor;
  }
  return bounds;
}

double QuantileFromBuckets(const std::vector<double>& upper_bounds,
                           const uint64_t* bucket_counts, uint64_t count,
                           double q) {
  TASTI_CHECK(q >= 0.0 && q <= 1.0, "quantile must be in [0, 1]");
  if (count == 0 || upper_bounds.empty()) return 0.0;
  const double rank = q * static_cast<double>(count);
  double cumulative = 0.0;
  for (size_t i = 0; i < upper_bounds.size(); ++i) {
    const double in_bucket = static_cast<double>(bucket_counts[i]);
    if (cumulative + in_bucket >= rank && in_bucket > 0.0) {
      const double lower =
          i == 0 ? std::min(0.0, upper_bounds[0]) : upper_bounds[i - 1];
      const double fraction = (rank - cumulative) / in_bucket;
      return lower + fraction * (upper_bounds[i] - lower);
    }
    cumulative += in_bucket;
  }
  // Rank falls in the +inf overflow bucket: clamp to the last finite bound.
  return upper_bounds.back();
}

std::vector<double> LinearBuckets(double start, double width, size_t count) {
  TASTI_CHECK(width > 0.0, "bad linear bucket spec");
  std::vector<double> bounds;
  bounds.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    bounds.push_back(start + static_cast<double>(i) * width);
  }
  return bounds;
}

MetricsRegistry& MetricsRegistry::Global() {
  // Leaked deliberately: pool workers may update instruments during
  // static teardown.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

MetricsRegistry::Entry* MetricsRegistry::FindOrNull(const std::string& name) {
  for (const auto& entry : entries_) {
    if (entry->name == name) return entry.get();
  }
  return nullptr;
}

Counter* MetricsRegistry::counter(const std::string& name,
                                  const std::string& unit) {
  std::unique_lock<std::mutex> lock(mu_);
  if (Entry* existing = FindOrNull(name)) {
    TASTI_CHECK(existing->kind == Kind::kCounter,
                "metric registered with a different type: " + name);
    return existing->counter.get();
  }
  auto entry = std::make_unique<Entry>();
  entry->name = name;
  entry->unit = unit;
  entry->kind = Kind::kCounter;
  entry->counter = std::make_unique<Counter>();
  Counter* out = entry->counter.get();
  entries_.push_back(std::move(entry));
  return out;
}

Gauge* MetricsRegistry::gauge(const std::string& name, const std::string& unit) {
  std::unique_lock<std::mutex> lock(mu_);
  if (Entry* existing = FindOrNull(name)) {
    TASTI_CHECK(existing->kind == Kind::kGauge,
                "metric registered with a different type: " + name);
    return existing->gauge.get();
  }
  auto entry = std::make_unique<Entry>();
  entry->name = name;
  entry->unit = unit;
  entry->kind = Kind::kGauge;
  entry->gauge = std::make_unique<Gauge>();
  Gauge* out = entry->gauge.get();
  entries_.push_back(std::move(entry));
  return out;
}

Histogram* MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> upper_bounds,
                                      const std::string& unit) {
  std::unique_lock<std::mutex> lock(mu_);
  if (Entry* existing = FindOrNull(name)) {
    TASTI_CHECK(existing->kind == Kind::kHistogram,
                "metric registered with a different type: " + name);
    return existing->histogram.get();
  }
  auto entry = std::make_unique<Entry>();
  entry->name = name;
  entry->unit = unit;
  entry->kind = Kind::kHistogram;
  entry->histogram = std::make_unique<Histogram>(std::move(upper_bounds));
  Histogram* out = entry->histogram.get();
  entries_.push_back(std::move(entry));
  return out;
}

void MetricsRegistry::ResetAll() {
  std::unique_lock<std::mutex> lock(mu_);
  for (const auto& entry : entries_) {
    switch (entry->kind) {
      case Kind::kCounter:
        entry->counter->Reset();
        break;
      case Kind::kGauge:
        entry->gauge->Reset();
        break;
      case Kind::kHistogram:
        entry->histogram->Reset();
        break;
    }
  }
}

std::vector<MetricSample> MetricsRegistry::Samples() const {
  std::unique_lock<std::mutex> lock(mu_);
  std::vector<MetricSample> samples;
  samples.reserve(entries_.size());
  for (const auto& entry : entries_) {
    MetricSample sample;
    sample.name = entry->name;
    sample.unit = entry->unit;
    switch (entry->kind) {
      case Kind::kCounter:
        sample.kind = 'c';
        sample.value = static_cast<double>(entry->counter->value());
        break;
      case Kind::kGauge:
        sample.kind = 'g';
        sample.value = entry->gauge->value();
        break;
      case Kind::kHistogram: {
        const Histogram& h = *entry->histogram;
        sample.kind = 'h';
        sample.count = h.count();
        sample.sum = h.sum();
        sample.upper_bounds = h.upper_bounds();
        sample.bucket_counts.resize(h.num_buckets());
        for (size_t b = 0; b < h.num_buckets(); ++b) {
          sample.bucket_counts[b] = h.bucket_count(b);
        }
        break;
      }
    }
    samples.push_back(std::move(sample));
  }
  std::sort(samples.begin(), samples.end(),
            [](const MetricSample& a, const MetricSample& b) {
              return a.name < b.name;
            });
  return samples;
}

namespace {
void AppendEscaped(const std::string& s, std::string* out) {
  for (char c : s) {
    if (c == '"' || c == '\\') out->push_back('\\');
    out->push_back(c);
  }
}

// %g keeps integral values integral ("16" not "16.000000") and stays
// round-trippable for the snapshot's consumers.
std::string FmtDouble(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}
}  // namespace

std::string MetricsRegistry::ToJson() const {
  std::unique_lock<std::mutex> lock(mu_);
  std::vector<const Entry*> sorted;
  sorted.reserve(entries_.size());
  for (const auto& entry : entries_) sorted.push_back(entry.get());
  std::sort(sorted.begin(), sorted.end(),
            [](const Entry* a, const Entry* b) { return a->name < b->name; });

  std::string out = "[\n";
  for (size_t i = 0; i < sorted.size(); ++i) {
    const Entry& entry = *sorted[i];
    out += "  {\"metric\": \"";
    AppendEscaped(entry.name, &out);
    out += "\", \"unit\": \"";
    AppendEscaped(entry.unit, &out);
    out += "\", ";
    switch (entry.kind) {
      case Kind::kCounter:
        out += "\"type\": \"counter\", \"value\": " +
               std::to_string(entry.counter->value());
        break;
      case Kind::kGauge:
        out += "\"type\": \"gauge\", \"value\": " +
               FmtDouble(entry.gauge->value());
        break;
      case Kind::kHistogram: {
        const Histogram& h = *entry.histogram;
        out += "\"type\": \"histogram\", \"count\": " +
               std::to_string(h.count()) + ", \"sum\": " + FmtDouble(h.sum()) +
               ", \"buckets\": [";
        for (size_t b = 0; b < h.num_buckets(); ++b) {
          if (b > 0) out += ", ";
          out += "{\"le\": ";
          out += b < h.upper_bounds().size()
                     ? FmtDouble(h.upper_bounds()[b])
                     : std::string("\"inf\"");
          out += ", \"count\": " + std::to_string(h.bucket_count(b)) + "}";
        }
        out += "]";
        break;
      }
    }
    out += i + 1 < sorted.size() ? "},\n" : "}\n";
  }
  out += "]\n";
  return out;
}

Status MetricsRegistry::WriteJson(const std::string& path) const {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return Status::IOError("cannot open " + path);
  const std::string json = ToJson();
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (written != json.size()) return Status::IOError("short write to " + path);
  return Status::OK();
}

}  // namespace tasti::obs
