#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <cstdio>

#include "obs/live.h"

namespace tasti::obs {

namespace {

// Monotonic recorder ids let the thread-local buffer cache detect a stale
// pointer even if a destroyed recorder's address is reused.
std::atomic<uint64_t> g_next_recorder_id{1};

thread_local uint64_t t_cached_recorder_id = 0;
thread_local void* t_cached_buffer = nullptr;

}  // namespace

TraceRecorder::TraceRecorder()
    : recorder_id_(g_next_recorder_id.fetch_add(1, std::memory_order_relaxed)),
      epoch_(std::chrono::steady_clock::now()) {}

TraceRecorder::~TraceRecorder() = default;

TraceRecorder& TraceRecorder::Global() {
  // Leaked deliberately: pool workers may record during static teardown.
  static TraceRecorder* recorder = new TraceRecorder();
  return *recorder;
}

int64_t TraceRecorder::NowMicros() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

TraceRecorder::ThreadBuffer* TraceRecorder::BufferForThisThread() {
  if (t_cached_recorder_id == recorder_id_) {
    return static_cast<ThreadBuffer*>(t_cached_buffer);
  }
  const std::thread::id self = std::this_thread::get_id();
  std::unique_lock<std::mutex> lock(mu_);
  ThreadBuffer* buffer = nullptr;
  for (const auto& existing : buffers_) {
    if (existing->owner == self) {
      buffer = existing.get();
      break;
    }
  }
  if (buffer == nullptr) {
    buffers_.push_back(std::make_unique<ThreadBuffer>());
    buffer = buffers_.back().get();
    buffer->owner = self;
    buffer->tid = next_tid_++;
  }
  // Cache only for the global recorder: its buffers are never freed, so
  // the cached pointer can never dangle. Short-lived test recorders take
  // the slow path (and allocate one buffer per recording thread).
  if (this == &Global()) {
    t_cached_recorder_id = recorder_id_;
    t_cached_buffer = buffer;
  }
  return buffer;
}

void TraceRecorder::Record(const char* name, int64_t ts_us, int64_t dur_us) {
  ThreadBuffer* buffer = BufferForThisThread();
  std::unique_lock<std::mutex> lock(buffer->mu);
  buffer->events.push_back(TraceEvent{name, ts_us, dur_us, buffer->tid});
}

std::vector<TraceEvent> TraceRecorder::Snapshot() const {
  std::vector<TraceEvent> merged;
  {
    std::unique_lock<std::mutex> lock(mu_);
    for (const auto& buffer : buffers_) {
      std::unique_lock<std::mutex> buffer_lock(buffer->mu);
      merged.insert(merged.end(), buffer->events.begin(), buffer->events.end());
    }
  }
  std::sort(merged.begin(), merged.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.ts_us != b.ts_us) return a.ts_us < b.ts_us;
              return a.dur_us > b.dur_us;  // parents before children
            });
  return merged;
}

size_t TraceRecorder::event_count() const {
  std::unique_lock<std::mutex> lock(mu_);
  size_t count = 0;
  for (const auto& buffer : buffers_) {
    std::unique_lock<std::mutex> buffer_lock(buffer->mu);
    count += buffer->events.size();
  }
  return count;
}

void TraceRecorder::Clear() {
  std::unique_lock<std::mutex> lock(mu_);
  for (const auto& buffer : buffers_) {
    std::unique_lock<std::mutex> buffer_lock(buffer->mu);
    buffer->events.clear();
  }
  epoch_ = std::chrono::steady_clock::now();
}

void Span::Finish() {
  TraceRecorder& global = TraceRecorder::Global();
  const int64_t dur_us = global.NowMicros() - start_us_;
  if ((sinks_ & kSpanSinkTrace) != 0) {
    global.Record(name_, start_us_, dur_us);
  }
  if ((sinks_ & kSpanSinkFlight) != 0) {
    FlightRecorder::Global().Record(name_, start_us_, dur_us);
  }
}

namespace internal {
// Span names are static identifiers (module.phase); escaping covers the
// JSON specials anyway so a stray name cannot corrupt the file.
void AppendJsonEscaped(const char* s, std::string* out) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char hex[8];
      std::snprintf(hex, sizeof(hex), "\\u%04x", c);
      out->append(hex);
    } else {
      out->push_back(c);
    }
  }
}
}  // namespace internal

using internal::AppendJsonEscaped;

std::string TraceRecorder::ToJson() const {
  const std::vector<TraceEvent> events = Snapshot();
  std::string out;
  out.reserve(events.size() * 96 + 64);
  out += "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
  char line[160];
  for (size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& event = events[i];
    out += "  {\"name\": \"";
    AppendJsonEscaped(event.name, &out);
    std::snprintf(line, sizeof(line),
                  "\", \"cat\": \"tasti\", \"ph\": \"X\", \"ts\": %lld, "
                  "\"dur\": %lld, \"pid\": 1, \"tid\": %u}%s\n",
                  static_cast<long long>(event.ts_us),
                  static_cast<long long>(event.dur_us), event.tid,
                  i + 1 < events.size() ? "," : "");
    out += line;
  }
  out += "]}\n";
  return out;
}

Status TraceRecorder::WriteJson(const std::string& path) const {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return Status::IOError("cannot open " + path);
  const std::string json = ToJson();
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (written != json.size()) return Status::IOError("short write to " + path);
  return Status::OK();
}

}  // namespace tasti::obs
