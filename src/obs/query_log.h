#ifndef TASTI_OBS_QUERY_LOG_H_
#define TASTI_OBS_QUERY_LOG_H_

/// \file query_log.h
/// Per-query cost attribution for a TastiSession.
///
/// The paper's headline claims (Table 1, Figures 6-9) are statements about
/// where time and target-labeler invocations go. The QueryLog makes every
/// session produce that ledger as a machine-readable artifact: one record
/// per query with the query type, parameters, wall time split by phase
/// (representative scoring, propagation, query algorithm, oracle calls,
/// cracking), the labeler invocations attributed to *that* query, and
/// their cost in each Table-1 labeler's native unit via labeler::CostModel.
///
/// Attribution invariant: index_invocations() plus the sum of per-query
/// invocations equals the target labeler's invocations() counter, provided
/// the labeler started the session at zero.

#include <cstddef>
#include <string>
#include <vector>

#include "labeler/cost_model.h"
#include "labeler/labeler.h"
#include "util/status.h"
#include "util/timer.h"

namespace tasti::obs {

/// Wall time of one query, split by phase. Phases are disjoint:
/// algorithm_seconds excludes time spent inside the target labeler
/// (oracle_seconds), measured by TimedLabeler pausing the algorithm timer
/// around each Label() call.
struct QueryPhaseTimes {
  double rep_score_seconds = 0.0;    ///< scorer over representatives
  double propagation_seconds = 0.0;  ///< propagation to all records
  double algorithm_seconds = 0.0;    ///< query algorithm, oracle excluded
  double oracle_seconds = 0.0;       ///< inside target labeler calls
  double crack_seconds = 0.0;        ///< post-query index cracking

  double TotalSeconds() const {
    return rep_score_seconds + propagation_seconds + algorithm_seconds +
           oracle_seconds + crack_seconds;
  }
};

/// One executed query.
struct QueryRecord {
  std::string query_type;  ///< "aggregate", "supg_recall", "limit", ...
  std::string params;      ///< e.g. "scorer=count_car error_target=0.05"
  QueryPhaseTimes phases;
  /// Oracle attempts attributed to this query alone. Includes attempts
  /// that failed — the cost metric is calls made, not labels obtained.
  size_t labeler_invocations = 0;
  size_t cracked_representatives = 0;
  /// Oracle calls that failed after retries during this query.
  size_t failed_oracle_calls = 0;
  /// Previously-failed representatives repaired after this query
  /// (self-healing crack; see SessionOptions::repair_failed_reps).
  size_t repaired_representatives = 0;
  /// How the proxy scores were obtained when served through the score
  /// cache: "full", "delta", "hit", or "shared". Empty for sessions (no
  /// cache in the single-query path).
  std::string proxy_source;
  /// Record rows recomputed when proxy_source is "delta".
  size_t proxy_delta_rows = 0;

  // Cost of this query's labeler invocations under each Table-1 labeler,
  // in its native unit (filled by QueryLog::AddQuery from its CostModel).
  double human_dollars = 0.0;
  double mask_rcnn_seconds = 0.0;
  double ssd_seconds = 0.0;
};

/// Session-lifetime ledger: the index-construction charge plus one record
/// per query. Not thread-safe (sessions are single-threaded).
class QueryLog {
 public:
  /// Replaces the cost model used to price subsequent records.
  void SetCostModel(const labeler::CostModel& model) { cost_model_ = model; }
  const labeler::CostModel& cost_model() const { return cost_model_; }

  /// Records the index-construction charge (once per session build).
  void RecordIndexBuild(size_t invocations, double seconds);

  /// Appends one query record, pricing its invocations with the cost model.
  void AddQuery(QueryRecord record);

  const std::vector<QueryRecord>& queries() const { return queries_; }
  size_t index_invocations() const { return index_invocations_; }
  double index_build_seconds() const { return index_build_seconds_; }

  /// index_invocations() + sum of per-query invocations. Matches the
  /// target labeler's invocations() counter (see file comment).
  size_t total_invocations() const;

  /// Total wall seconds across all query phases (index build excluded).
  double total_query_seconds() const;

  /// JSON document:
  ///   {"index": {...}, "queries": [...], "totals": {...}}
  /// See DESIGN.md §8 for the field inventory.
  std::string ToJson() const;

  /// Writes ToJson() to `path`.
  Status WriteJson(const std::string& path) const;

  void Clear();

 private:
  labeler::CostModel cost_model_;
  size_t index_invocations_ = 0;
  double index_build_seconds_ = 0.0;
  std::vector<QueryRecord> queries_;
};

/// TargetLabeler wrapper that (1) measures the wall time spent inside the
/// wrapped labeler and (2) pauses a caller-supplied phase timer around
/// each call, so the phase timer reads pure algorithm time. Invocation
/// counting delegates to the wrapped labeler, preserving the "including
/// wrapped labelers" contract of TargetLabeler::invocations().
class TimedLabeler : public labeler::TargetLabeler {
 public:
  /// Both pointers must outlive the wrapper; `paused_while_labeling` may
  /// be null (pure measurement).
  TimedLabeler(labeler::TargetLabeler* inner, WallTimer* paused_while_labeling)
      : inner_(inner), paused_(paused_while_labeling) {}

  data::LabelerOutput Label(size_t index) override {
    const bool pause = paused_ != nullptr && paused_->running();
    if (pause) paused_->Pause();
    WallTimer call_timer;
    data::LabelerOutput out = inner_->Label(index);
    seconds_ += call_timer.Seconds();
    if (pause) paused_->Resume();
    return out;
  }

  size_t num_records() const override { return inner_->num_records(); }
  size_t invocations() const override { return inner_->invocations(); }
  void ResetInvocations() override { inner_->ResetInvocations(); }

  /// Wall seconds spent inside the wrapped labeler so far.
  double seconds() const { return seconds_; }

 private:
  labeler::TargetLabeler* inner_;
  WallTimer* paused_;
  double seconds_ = 0.0;
};

/// FallibleLabeler counterpart of TimedLabeler: measures wall time inside
/// the wrapped oracle (successful or not) and pauses the caller's phase
/// timer around each call.
class TimedOracle : public labeler::FallibleLabeler {
 public:
  /// Both pointers must outlive the wrapper; `paused_while_labeling` may
  /// be null (pure measurement).
  TimedOracle(labeler::FallibleLabeler* inner, WallTimer* paused_while_labeling)
      : inner_(inner), paused_(paused_while_labeling) {}

  Result<data::LabelerOutput> TryLabel(size_t index) override {
    const bool pause = paused_ != nullptr && paused_->running();
    if (pause) paused_->Pause();
    WallTimer call_timer;
    Result<data::LabelerOutput> out = inner_->TryLabel(index);
    seconds_ += call_timer.Seconds();
    if (pause) paused_->Resume();
    return out;
  }

  Result<data::LabelerOutput> TryLabelWithin(size_t index,
                                             double budget_ms) override {
    const bool pause = paused_ != nullptr && paused_->running();
    if (pause) paused_->Pause();
    WallTimer call_timer;
    Result<data::LabelerOutput> out = inner_->TryLabelWithin(index, budget_ms);
    seconds_ += call_timer.Seconds();
    if (pause) paused_->Resume();
    return out;
  }

  size_t num_records() const override { return inner_->num_records(); }
  size_t invocations() const override { return inner_->invocations(); }
  void ResetInvocations() override { inner_->ResetInvocations(); }
  double last_call_latency_ms() const override {
    return inner_->last_call_latency_ms();
  }

  /// Wall seconds spent inside the wrapped oracle so far.
  double seconds() const { return seconds_; }

 private:
  labeler::FallibleLabeler* inner_;
  WallTimer* paused_;
  double seconds_ = 0.0;
};

}  // namespace tasti::obs

#endif  // TASTI_OBS_QUERY_LOG_H_
