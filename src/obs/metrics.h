#ifndef TASTI_OBS_METRICS_H_
#define TASTI_OBS_METRICS_H_

/// \file metrics.h
/// Named counters, gauges, and fixed-bucket histograms with a JSON
/// snapshot exporter.
///
/// Instruments register once (get-or-create under a mutex) and are updated
/// lock-free with relaxed atomics, so ThreadPool workers can bump the same
/// counter concurrently without contention beyond the cache line. Hot
/// paths cache the instrument pointer — instruments are never destroyed
/// while the process runs (the global registry is leaked) — and guard the
/// update with obs::MetricsEnabled() so a disabled metric costs one
/// relaxed load and a branch:
///
///   if (obs::MetricsEnabled()) {
///     static obs::Counter* const calls =
///         obs::MetricsRegistry::Global().counter("kernels.gemmbt.calls");
///     calls->Increment();
///   }
///
/// The snapshot schema follows the BENCH_*.json conventions: a flat array
/// of objects, one per metric, with explicit names and units (DESIGN.md
/// §8 documents the metric names).

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/config.h"
#include "util/status.h"

namespace tasti::obs {

/// Monotonically increasing count (relaxed atomic increments).
class Counter {
 public:
  void Increment(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-written value (e.g. current queue depth, current rep count).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: bucket upper bounds are set at registration and
/// never change, so concurrent Observe() calls touch only atomics.
class Histogram {
 public:
  /// `upper_bounds` must be strictly increasing; an implicit +inf bucket
  /// is appended.
  explicit Histogram(std::vector<double> upper_bounds);

  void Observe(double value);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  const std::vector<double>& upper_bounds() const { return upper_bounds_; }
  /// Count in bucket `i` (values <= upper_bounds()[i]; the final bucket is
  /// the +inf overflow).
  uint64_t bucket_count(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  size_t num_buckets() const { return buckets_.size(); }

  /// Estimated q-quantile (q in [0, 1]) by linear interpolation over the
  /// bucket bounds — see QuantileFromBuckets(). Returns 0 when empty.
  double Quantile(double q) const;

  void Reset();

 private:
  std::vector<double> upper_bounds_;  // excludes the +inf bucket
  std::vector<std::atomic<uint64_t>> buckets_;  // upper_bounds_.size() + 1
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Exponential bucket bounds: {start, start*factor, ...} (`count` bounds).
std::vector<double> ExponentialBuckets(double start, double factor,
                                       size_t count);

/// Linear bucket bounds: {start, start+width, ...} (`count` bounds). Used
/// where the observed range is small and uniform — e.g. oracle-scheduler
/// batch sizes, admission queue depths.
std::vector<double> LinearBuckets(double start, double width, size_t count);

/// Quantile estimate from bucketed counts shared by Histogram and the
/// sliding-window sketches in obs/live.h. `bucket_counts` has
/// upper_bounds.size() + 1 entries (the last is the +inf overflow) and
/// `count` is their total. The target rank q*count is located in its
/// bucket and interpolated linearly between the bucket's bounds; the first
/// bucket's lower bound is min(0, upper_bounds[0]) and a rank landing in
/// the overflow bucket returns the last finite bound (the estimate is
/// clamped, not extrapolated).
double QuantileFromBuckets(const std::vector<double>& upper_bounds,
                           const uint64_t* bucket_counts, uint64_t count,
                           double q);

/// One instrument's state as captured by MetricsRegistry::Samples().
/// Decouples exporters (JSON, Prometheus exposition in obs/live.h) from
/// the registry's internal entry layout.
struct MetricSample {
  std::string name;
  std::string unit;
  char kind = 'c';  // 'c' counter, 'g' gauge, 'h' histogram
  double value = 0.0;                   // counter / gauge
  uint64_t count = 0;                   // histogram
  double sum = 0.0;                     // histogram
  std::vector<double> upper_bounds;     // histogram (finite bounds)
  std::vector<uint64_t> bucket_counts;  // histogram (+inf bucket last)
};

/// Name-keyed instrument registry with a JSON snapshot exporter.
/// Instrument pointers are stable for the registry's lifetime.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Process-wide registry (leaked, so instruments outlive worker threads).
  static MetricsRegistry& Global();

  /// Get-or-create. `unit` is recorded on first registration ("calls",
  /// "micros", "records", ...).
  Counter* counter(const std::string& name, const std::string& unit = "");
  Gauge* gauge(const std::string& name, const std::string& unit = "");
  /// `upper_bounds` applies only on first registration.
  Histogram* histogram(const std::string& name,
                       std::vector<double> upper_bounds,
                       const std::string& unit = "");

  /// Zeroes every instrument (registrations persist).
  void ResetAll();

  /// Point-in-time copy of every instrument, sorted by name. Values are
  /// read with relaxed loads, so a sample taken during a live workload is
  /// per-instrument consistent, not cross-instrument consistent.
  std::vector<MetricSample> Samples() const;

  /// JSON snapshot: an array of flat objects sorted by metric name, e.g.
  ///   [{"metric": "session.queries", "type": "counter", "unit": "calls",
  ///     "value": 5}, ...]
  /// Histograms carry "count", "sum", and a "buckets" array of
  /// {"le": bound, "count": n} (le = "less than or equal"; the final
  /// bucket has "le": "inf").
  std::string ToJson() const;

  /// Writes ToJson() to `path`.
  Status WriteJson(const std::string& path) const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    std::string name;
    std::string unit;
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry* FindOrNull(const std::string& name);

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Entry>> entries_;
};

}  // namespace tasti::obs

#endif  // TASTI_OBS_METRICS_H_
