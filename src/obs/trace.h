#ifndef TASTI_OBS_TRACE_H_
#define TASTI_OBS_TRACE_H_

/// \file trace.h
/// Low-overhead tracing with RAII spans and Chrome trace_event export.
///
/// Spans record where wall time goes across index construction and query
/// processing. Each completed span becomes one Chrome "X" (complete) event
/// — name, steady-clock timestamp, duration, thread id — so the export is
/// well-formed by construction (no unpaired begin/end) and loads directly
/// in chrome://tracing or Perfetto.
///
/// Concurrency: events land in per-thread buffers. Each buffer has its own
/// mutex (uncontended on the hot path — only export racing a writer ever
/// blocks), and the buffer registry is guarded separately. A disabled span
/// costs one relaxed atomic load and a branch; nothing is allocated.
///
/// Span names must be string literals (or otherwise outlive the recorder):
/// events store the pointer, not a copy.
///
///   {
///     obs::Span span("index.embed");
///     ...  // work
///   }  // event recorded here, if tracing was enabled at construction
///
/// The span naming scheme is documented in DESIGN.md §8.

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/config.h"
#include "util/status.h"

namespace tasti::obs {

/// One completed span. Timestamps are microseconds on the steady clock,
/// relative to the recorder's construction (or last Clear()).
struct TraceEvent {
  const char* name = nullptr;
  int64_t ts_us = 0;
  int64_t dur_us = 0;
  uint32_t tid = 0;
};

/// Collects spans from any number of threads and exports Chrome trace
/// JSON. Thread-safe. Use Global() for the process-wide recorder that the
/// Span(name) convenience constructor targets.
class TraceRecorder {
 public:
  TraceRecorder();
  ~TraceRecorder();

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Process-wide recorder (never destroyed, so worker threads may record
  /// during static teardown without use-after-free).
  static TraceRecorder& Global();

  /// Microseconds since the recorder epoch (steady clock).
  int64_t NowMicros() const;

  /// Appends one completed event from the calling thread.
  void Record(const char* name, int64_t ts_us, int64_t dur_us);

  /// Snapshot of every buffered event (merged across threads, ordered by
  /// timestamp).
  std::vector<TraceEvent> Snapshot() const;

  /// Total buffered events.
  size_t event_count() const;

  /// Drops all buffered events and resets the epoch.
  void Clear();

  /// Chrome trace_event JSON: {"traceEvents": [...]} with "X" phase
  /// events, ts/dur in microseconds.
  std::string ToJson() const;

  /// Writes ToJson() to `path`.
  Status WriteJson(const std::string& path) const;

 private:
  struct ThreadBuffer {
    mutable std::mutex mu;
    std::vector<TraceEvent> events;
    std::thread::id owner;
    uint32_t tid = 0;
  };

  ThreadBuffer* BufferForThisThread();

  const uint64_t recorder_id_;
  mutable std::mutex mu_;  // guards buffers_ (the list, not the contents)
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
  std::chrono::steady_clock::time_point epoch_;
  uint32_t next_tid_ = 1;
};

/// RAII span over the global sinks. The sink mask is sampled once at
/// construction (a span that straddles a disable still completes — events
/// are never half-recorded): bit kSpanSinkTrace sends the completed span
/// to TraceRecorder::Global(), bit kSpanSinkFlight additionally to the
/// bounded FlightRecorder ring (obs/live.h). With every sink off the
/// constructor is one relaxed load and the destructor one branch.
class Span {
 public:
  explicit Span(const char* name) : sinks_(SpanSinks()) {
    if (sinks_ != 0) {
      name_ = name;
      start_us_ = TraceRecorder::Global().NowMicros();
    }
  }

  /// Records into a specific recorder regardless of the global flags
  /// (test hook).
  Span(TraceRecorder* recorder, const char* name)
      : recorder_(recorder), name_(name), start_us_(recorder->NowMicros()) {}

  ~Span() {
    if (recorder_ != nullptr) {
      recorder_->Record(name_, start_us_, recorder_->NowMicros() - start_us_);
    } else if (sinks_ != 0) {
      Finish();
    }
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  /// Out of line: fans the completed span out to the global sinks chosen
  /// at construction (both sinks share TraceRecorder::Global()'s clock so
  /// trace exports and flight dumps line up on one timebase).
  void Finish();

  TraceRecorder* recorder_ = nullptr;
  const char* name_ = nullptr;
  int64_t start_us_ = 0;
  uint32_t sinks_ = 0;
};

namespace internal {
/// Appends `s` to `out` with JSON string escaping (shared by the trace
/// and flight-recorder exporters).
void AppendJsonEscaped(const char* s, std::string* out);
}  // namespace internal

}  // namespace tasti::obs

/// Names a scoped span without inventing a variable name at the call site.
#define TASTI_SPAN_CONCAT_(a, b) a##b
#define TASTI_SPAN_CONCAT(a, b) TASTI_SPAN_CONCAT_(a, b)
#define TASTI_SPAN(name) \
  ::tasti::obs::Span TASTI_SPAN_CONCAT(tasti_span_, __LINE__)(name)

#endif  // TASTI_OBS_TRACE_H_
