#ifndef TASTI_DURABLE_WAL_H_
#define TASTI_DURABLE_WAL_H_

/// \file wal.h
/// Write-ahead log for index mutations.
///
/// Every mutation that changes published index state — a crack (new
/// representatives placed from a query's oracle labels), a streaming
/// record append, a representative repair — is logged as one framed
/// record, followed by an epoch-publish marker that commits the batch:
///
///   frame   := u32 frame_len | payload | TCHK footer (util/checksum.h)
///   payload := u8 type | u64 lsn | body
///
/// The footer is the same 20-byte magic+length+FNV-1a discipline the index
/// serializer uses, so a torn or bit-flipped frame is detected before any
/// byte of it is interpreted. Records are buffered in memory by WalWriter
/// and reach the segment file only at Sync() — the fsync barrier the
/// server issues at each epoch publish. Replay applies a record's
/// mutations only when its epoch-publish marker made it to disk: a crash
/// mid-sync loses at most the unpublished tail, never a published epoch.
///
/// Segments are named wal-<seq>.log; the checkpointer rotates to a fresh
/// segment at every checkpoint so old segments can be garbage-collected
/// once the manifest's high-water mark passes them.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "data/schema.h"
#include "durable/file.h"
#include "nn/matrix.h"
#include "util/status.h"

namespace tasti::durable {

enum class WalRecordType : uint8_t {
  kCrack = 1,         ///< new representatives from a query's oracle labels
  kRepair = 2,        ///< re-annotation of a degraded representative
  kAppend = 3,        ///< streaming record ingestion (raw features)
  kEpochPublish = 4,  ///< commit marker: the mutations above it are live
};

/// One log record. The members matching `type` carry the payload.
struct WalRecord {
  WalRecordType type = WalRecordType::kEpochPublish;
  uint64_t lsn = 0;  ///< assigned by WalWriter::Append

  // kCrack: records and their labels, parallel arrays.
  std::vector<uint64_t> records;
  // kCrack (parallel to `records`) or kRepair (exactly one).
  std::vector<data::LabelerOutput> labels;
  // kRepair: position of the repaired representative.
  uint64_t rep_pos = 0;
  // kAppend: raw feature rows; replay re-embeds them through the index's
  // stored embedder, which is deterministic.
  nn::Matrix features;
  // kEpochPublish: the epoch the preceding mutations produced.
  uint64_t epoch = 0;
};

std::string SegmentFileName(uint64_t seq);
/// The sequence number encoded in a segment file name, if it is one.
std::optional<uint64_t> ParseSegmentFileName(const std::string& name);

/// One framed, checksummed record.
std::string EncodeWalRecord(const WalRecord& record);

/// A decoded segment. `offsets` has one entry per record plus a final
/// entry equal to `valid_bytes`, so offsets[i]..offsets[i+1] spans record
/// i's frame — recovery uses it to truncate an uncommitted tail in place.
struct WalSegment {
  std::vector<WalRecord> records;
  std::vector<size_t> offsets;
  size_t valid_bytes = 0;  ///< prefix covered by structurally whole frames
  size_t torn_bytes = 0;   ///< bytes past valid_bytes (frame ran off EOF)
  bool corrupt = false;    ///< a whole frame failed its checksum or parse
  std::string error;       ///< detail when corrupt
};

/// Decodes frames sequentially. A frame that runs past end-of-buffer is a
/// torn tail (the normal aftermath of a crash mid-sync); a structurally
/// whole frame whose checksum or body fails to parse marks the segment
/// corrupt (bit rot — recovery quarantines the file). Decoding stops at
/// the first bad frame either way.
WalSegment DecodeWalSegment(const std::string& buffer);

/// Buffers records for one segment and flushes them at explicit Sync()
/// barriers. Not thread-safe; the server serializes mutations under its
/// crack mutex.
class WalWriter {
 public:
  /// Appends into dir/wal-<seq>.log (created on first Sync), assigning
  /// LSNs from `next_lsn`.
  WalWriter(File* fs, std::string dir, uint64_t seq, uint64_t next_lsn);

  /// Frames the record, stamps it with the next LSN (returned), and
  /// buffers it. Nothing reaches disk until Sync().
  uint64_t Append(WalRecord record);

  /// Durability barrier: one appending write + fsync of everything
  /// buffered. No-op when the buffer is empty.
  Status Sync();

  uint64_t segment() const { return seq_; }
  uint64_t next_lsn() const { return next_lsn_; }
  size_t buffered_bytes() const { return buffer_.size(); }
  /// Bytes this writer has durably appended to its segment.
  size_t synced_bytes() const { return synced_bytes_; }
  const std::string& path() const { return path_; }

 private:
  File* fs_;
  std::string dir_;
  uint64_t seq_;
  uint64_t next_lsn_;
  std::string path_;
  std::string buffer_;
  size_t synced_bytes_ = 0;
};

}  // namespace tasti::durable

#endif  // TASTI_DURABLE_WAL_H_
