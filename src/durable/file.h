#ifndef TASTI_DURABLE_FILE_H_
#define TASTI_DURABLE_FILE_H_

/// \file file.h
/// Filesystem indirection for the durability layer, with deterministic
/// crash injection.
///
/// Every mutation the WAL, checkpointer, and recovery path perform goes
/// through a durable::File so the crash-injection harness can count
/// filesystem operations and kill the "process" at exactly op N. The model
/// (like labeler/faults.h, a seeded pure function of the op counter):
///
///  - Write/Append are one counted op each: the bytes plus their fsync
///    either land entirely (op admitted) or — at the crash point — only a
///    seeded prefix lands (a torn write, the page-cache loss a real crash
///    produces). Data buffered by callers but never synced simply never
///    reaches the file.
///  - Rename/Remove/MakeDir are counted, atomic ops: at the crash point
///    they fail without side effects (POSIX rename is atomic; there is no
///    torn rename to model).
///  - After the crash point every further mutation fails ("the process is
///    dead"); reads are uncounted and unaffected, because recovery — a new
///    process — uses a fresh File.
///
/// A default-constructed File never injects anything and is the real
/// filesystem (fsync barriers included); DefaultFile() is a process-wide
/// instance of it.

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "util/status.h"

namespace tasti::durable {

/// Deterministic crash schedule: the `crash_at_op`-th mutation (1-based)
/// tears/fails and every later one fails. 0 disables injection.
struct CrashPoint {
  uint64_t crash_at_op = 0;
  uint64_t seed = 0;  ///< determines the torn-write prefix length
};

/// Thread-safe; the op numbering is deterministic only when callers
/// serialize their mutations (the server logs under its crack mutex).
class File {
 public:
  File() = default;
  explicit File(CrashPoint crash) : crash_(crash) {}

  File(const File&) = delete;
  File& operator=(const File&) = delete;

  // --- Mutations (counted ops, crash-injectable) ---

  /// Creates/truncates `path` with `data` and fsyncs it.
  Status Write(const std::string& path, const std::string& data);
  /// Appends `data` to `path` (creating it if absent) and fsyncs it.
  Status Append(const std::string& path, const std::string& data);
  /// Atomic rename; the destination directory is fsynced so the rename —
  /// the commit point of every atomic-publish sequence — survives a crash.
  Status Rename(const std::string& from, const std::string& to);
  Status Remove(const std::string& path);
  /// mkdir -p; one counted op.
  Status MakeDir(const std::string& path);
  /// The atomic-publish idiom: write `path`.tmp + fsync, rename over
  /// `path`. The tmp file is unlinked (best effort) on failure, so a crash
  /// mid-Write can never leave a truncated file at the target path.
  Status WriteAtomic(const std::string& path, const std::string& data);

  // --- Reads (uncounted, never injected) ---

  Result<std::string> Read(const std::string& path) const;
  /// Sorted names in `dir` (excluding "." and "..").
  Result<std::vector<std::string>> List(const std::string& dir) const;
  bool Exists(const std::string& path) const;

  // --- Introspection / test hooks ---

  /// Re-arms injection to crash `ops_from_now` mutations from now (tests
  /// arm a crash mid-scenario without predicting absolute op numbers).
  void ArmCrash(uint64_t ops_from_now, uint64_t seed);
  uint64_t ops() const;
  bool crashed() const;

 private:
  enum class Admission { kRun, kTear, kDead };
  /// Counts one mutation and decides its fate.
  Admission AdmitOp(uint64_t* op);
  /// Seeded torn-write length for the crashing op: some prefix of `size`.
  size_t TornPrefix(uint64_t op, size_t size) const;
  Status CrashedStatus() const;

  mutable std::mutex mu_;
  CrashPoint crash_;
  uint64_t ops_ = 0;
  bool crashed_ = false;
};

/// The process-wide real filesystem (no injection).
File* DefaultFile();

}  // namespace tasti::durable

#endif  // TASTI_DURABLE_FILE_H_
