#ifndef TASTI_DURABLE_RECOVERY_H_
#define TASTI_DURABLE_RECOVERY_H_

/// \file recovery.h
/// Crash recovery: latest valid checkpoint + committed WAL replay.
///
/// Recover() rebuilds the exact index state of the last published epoch
/// that reached disk:
///
///  1. Read MANIFEST. If it is missing or unreadable, fall back to
///     scanning checkpoint files directly (each is self-describing) in
///     descending sequence order; unreadable checkpoints are quarantined.
///  2. Deserialize the chosen checkpoint's index.
///  3. Replay WAL segments from the checkpoint's high-water mark in
///     sequence order. Records are buffered and applied to the index only
///     when their epoch-publish marker is read — mutations whose marker
///     never reached disk were never observable and are discarded (and
///     physically truncated, with any torn tail, so a second recovery
///     reads the same bytes). Cracks/appends/repairs replay through the
///     same TastiIndex mutation paths the live server used, which are
///     deterministic — so the recovered epoch is bit-identical to the
///     pre-crash one.
///  4. A segment that fails validation mid-file (bit rot, not a torn
///     tail) is quarantined into dir/quarantine/ together with every later
///     segment, and replay stops at the last epoch committed before it:
///     the server starts from the newest intact state instead of refusing
///     to start, surfacing the quarantine as a monitor fault.
///
/// Recovery mutates the directory only in ways that are idempotent
/// (truncation, quarantine moves): recovering twice from the same
/// directory yields the same state.

#include <cstdint>
#include <string>
#include <vector>

#include "core/index.h"
#include "durable/checkpoint.h"
#include "durable/file.h"
#include "util/status.h"

namespace tasti::durable {

struct RecoveryStats {
  bool manifest_missing = false;  ///< fell back to the checkpoint scan
  uint64_t checkpoint_seq = 0;
  uint64_t checkpoint_epoch = 0;
  size_t segments_read = 0;
  size_t records_replayed = 0;  ///< committed mutations applied
  size_t cracks_replayed = 0;
  size_t appends_replayed = 0;
  size_t repairs_replayed = 0;
  size_t epochs_replayed = 0;
  size_t uncommitted_records_discarded = 0;
  size_t torn_bytes_truncated = 0;
  std::vector<std::string> quarantined_files;
  /// Human-readable fault details (the server forwards them to the
  /// monitor as "durability" faults).
  std::vector<std::string> faults;
};

struct RecoveredState {
  core::TastiIndex index;
  uint64_t epoch = 0;  ///< last committed epoch (the one to republish)
  // Positions a resumed DurabilityManager::Open should adopt.
  uint64_t next_lsn = 1;
  uint64_t wal_segment = 1;  ///< next segment sequence to write
  uint64_t checkpoint_seq = 0;
  RecoveryStats stats;
};

/// Recovers from `dir`. NotFound means no usable durable state exists
/// (nothing was ever checkpointed, or everything was quarantined) — the
/// caller should cold-start instead. Pass fs = nullptr for DefaultFile().
Result<RecoveredState> Recover(File* fs, const std::string& dir);

}  // namespace tasti::durable

#endif  // TASTI_DURABLE_RECOVERY_H_
