#include "durable/file.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

namespace tasti::durable {

namespace {

Status Errno(const std::string& what, const std::string& path) {
  return Status::IOError(what + " " + path + ": " + std::strerror(errno));
}

std::string ParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

/// fsync on the directory makes a just-committed rename/create durable.
/// Best effort: some filesystems refuse O_RDONLY fsync on directories.
void SyncDir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

Status WriteFd(int fd, const char* data, size_t size, const std::string& path) {
  size_t written = 0;
  while (written < size) {
    const ssize_t n = ::write(fd, data + written, size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("write", path);
    }
    written += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status WriteAll(const std::string& path, const std::string& data, int flags) {
  const int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) return Errno("open", path);
  Status status = WriteFd(fd, data.data(), data.size(), path);
  if (status.ok() && ::fsync(fd) != 0) status = Errno("fsync", path);
  ::close(fd);
  return status;
}

}  // namespace

File::Admission File::AdmitOp(uint64_t* op) {
  std::lock_guard<std::mutex> lock(mu_);
  *op = ++ops_;
  if (crashed_) return Admission::kDead;
  if (crash_.crash_at_op != 0 && *op >= crash_.crash_at_op) {
    crashed_ = true;
    return Admission::kTear;
  }
  return Admission::kRun;
}

size_t File::TornPrefix(uint64_t op, size_t size) const {
  // Same discipline as labeler/faults.h: a pure function of (seed, op), so
  // the byte the tear lands on is reproducible run to run.
  uint64_t h = crash_.seed * 0x9E3779B97F4A7C15ull + op;
  h ^= h >> 33;
  h *= 0xFF51AFD7ED558CCDull;
  h ^= h >> 29;
  return static_cast<size_t>(h % (size + 1));
}

Status File::CrashedStatus() const {
  return Status::DataLoss("injected crash: filesystem is dead");
}

Status File::Write(const std::string& path, const std::string& data) {
  uint64_t op = 0;
  switch (AdmitOp(&op)) {
    case Admission::kRun:
      return WriteAll(path, data, O_WRONLY | O_CREAT | O_TRUNC);
    case Admission::kTear: {
      const std::string prefix = data.substr(0, TornPrefix(op, data.size()));
      (void)WriteAll(path, prefix, O_WRONLY | O_CREAT | O_TRUNC);
      return Status::DataLoss("injected crash at op " + std::to_string(op) +
                              ": torn write of " + path);
    }
    case Admission::kDead:
      break;
  }
  return CrashedStatus();
}

Status File::Append(const std::string& path, const std::string& data) {
  uint64_t op = 0;
  switch (AdmitOp(&op)) {
    case Admission::kRun:
      return WriteAll(path, data, O_WRONLY | O_CREAT | O_APPEND);
    case Admission::kTear: {
      const std::string prefix = data.substr(0, TornPrefix(op, data.size()));
      (void)WriteAll(path, prefix, O_WRONLY | O_CREAT | O_APPEND);
      return Status::DataLoss("injected crash at op " + std::to_string(op) +
                              ": torn append to " + path);
    }
    case Admission::kDead:
      break;
  }
  return CrashedStatus();
}

Status File::Rename(const std::string& from, const std::string& to) {
  uint64_t op = 0;
  if (AdmitOp(&op) != Admission::kRun) return CrashedStatus();
  if (::rename(from.c_str(), to.c_str()) != 0) {
    return Errno("rename", from + " -> " + to);
  }
  SyncDir(ParentDir(to));
  return Status::OK();
}

Status File::Remove(const std::string& path) {
  uint64_t op = 0;
  if (AdmitOp(&op) != Admission::kRun) return CrashedStatus();
  if (::remove(path.c_str()) != 0) return Errno("remove", path);
  return Status::OK();
}

Status File::MakeDir(const std::string& path) {
  uint64_t op = 0;
  if (AdmitOp(&op) != Admission::kRun) return CrashedStatus();
  std::string prefix;
  size_t at = 0;
  while (at < path.size()) {
    size_t slash = path.find('/', at + 1);
    if (slash == std::string::npos) slash = path.size();
    prefix = path.substr(0, slash);
    at = slash;
    if (prefix.empty()) continue;
    if (::mkdir(prefix.c_str(), 0755) != 0 && errno != EEXIST) {
      return Errno("mkdir", prefix);
    }
  }
  return Status::OK();
}

Status File::WriteAtomic(const std::string& path, const std::string& data) {
  const std::string tmp = path + ".tmp";
  Status written = Write(tmp, data);
  if (!written.ok()) {
    // A crash here leaves at most a torn `tmp`; the target is untouched.
    (void)::remove(tmp.c_str());
    return written;
  }
  Status renamed = Rename(tmp, path);
  if (!renamed.ok()) (void)::remove(tmp.c_str());
  return renamed;
}

Result<std::string> File::Read(const std::string& path) const {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return Status::NotFound("no such file: " + path);
    return Errno("open", path);
  }
  std::string out;
  char buffer[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buffer, sizeof(buffer));
    if (n < 0) {
      if (errno == EINTR) continue;
      Status status = Errno("read", path);
      ::close(fd);
      return status;
    }
    if (n == 0) break;
    out.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);
  return out;
}

Result<std::vector<std::string>> File::List(const std::string& dir) const {
  DIR* handle = ::opendir(dir.c_str());
  if (handle == nullptr) {
    if (errno == ENOENT) return Status::NotFound("no such directory: " + dir);
    return Errno("opendir", dir);
  }
  std::vector<std::string> names;
  while (const dirent* entry = ::readdir(handle)) {
    const std::string name = entry->d_name;
    if (name == "." || name == "..") continue;
    names.push_back(name);
  }
  ::closedir(handle);
  std::sort(names.begin(), names.end());
  return names;
}

bool File::Exists(const std::string& path) const {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

void File::ArmCrash(uint64_t ops_from_now, uint64_t seed) {
  std::lock_guard<std::mutex> lock(mu_);
  crash_.crash_at_op = ops_ + ops_from_now;
  crash_.seed = seed;
  crashed_ = false;
}

uint64_t File::ops() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ops_;
}

bool File::crashed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return crashed_;
}

File* DefaultFile() {
  static File* const file = new File();
  return file;
}

}  // namespace tasti::durable
