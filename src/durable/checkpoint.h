#ifndef TASTI_DURABLE_CHECKPOINT_H_
#define TASTI_DURABLE_CHECKPOINT_H_

/// \file checkpoint.h
/// Atomic full-index checkpoints plus the DurabilityManager that ties the
/// WAL and checkpointer together for the server.
///
/// A checkpoint is one self-describing file checkpoint-<seq>.ckpt: a
/// header naming the epoch it captures and the WAL position replay should
/// resume from, the serialized index (core/serialize.h), and a TCHK
/// footer over the whole thing. It is published atomically — written to a
/// tmp file, fsynced, renamed — and then MANIFEST (same atomic discipline,
/// also footered) is pointed at it. Recovery that finds no readable
/// MANIFEST can still scan checkpoint files directly, because each one
/// carries its own metadata.
///
/// Checkpointing rotates the WAL to a fresh segment first, so the manifest
/// high-water mark (wal_segment, next_lsn) cleanly bounds what replay must
/// read; segments and checkpoints below the mark are garbage-collected
/// after the manifest rename commits.

#include <cstdint>
#include <memory>
#include <string>

#include "core/index.h"
#include "durable/file.h"
#include "durable/wal.h"
#include "util/status.h"

namespace tasti::durable {

/// Format versions, bumped on incompatible layout changes. Encode* take an
/// explicit version so tests can manufacture version-skewed files.
inline constexpr uint32_t kManifestVersion = 1;
inline constexpr uint32_t kCheckpointVersion = 1;

/// Checkpoint metadata: stored in MANIFEST and inside each checkpoint.
struct Manifest {
  uint64_t checkpoint_seq = 0;
  uint64_t epoch = 0;         ///< epoch the checkpoint captures
  uint64_t wal_segment = 1;   ///< first WAL segment replay must read
  uint64_t next_lsn = 1;      ///< first LSN not reflected in the checkpoint
  std::string checkpoint_file;
};

std::string CheckpointFileName(uint64_t seq);
std::optional<uint64_t> ParseCheckpointFileName(const std::string& name);

std::string EncodeManifest(const Manifest& manifest,
                           uint32_t version = kManifestVersion);
Result<Manifest> DecodeManifest(const std::string& buffer);

Result<std::string> EncodeCheckpoint(const core::TastiIndex& index,
                                     const Manifest& meta,
                                     uint32_t version = kCheckpointVersion);
struct CheckpointContents {
  Manifest meta;
  core::TastiIndex index;
};
Result<CheckpointContents> DecodeCheckpoint(const std::string& buffer);

/// Server-facing knobs (ServerOptions::durability).
struct DurabilityOptions {
  /// Directory for WAL segments, checkpoints, and MANIFEST. Empty disables
  /// durability entirely.
  std::string dir;
  /// Full checkpoint every N published epochs (WAL replay cost bound).
  size_t checkpoint_every_epochs = 16;
  /// Filesystem indirection; null means the real DefaultFile(). The
  /// crash-injection harness passes its counting instance here.
  File* fs = nullptr;
};

struct DurabilityStats {
  uint64_t records_logged = 0;
  uint64_t bytes_logged = 0;
  uint64_t syncs = 0;  ///< fsync barriers issued (one per epoch publish)
  uint64_t epochs_published = 0;
  uint64_t checkpoints_written = 0;
  uint64_t segments_deleted = 0;  ///< GC'd after successful checkpoints
  bool failed = false;  ///< sticky: an IO error stopped durable logging
};

/// Coordinates the WAL writer and checkpointer. Not thread-safe: the
/// server calls it under its crack mutex, where mutations are already
/// serialized. Any IO failure is sticky — the server keeps serving from
/// memory (availability first) and surfaces a monitor fault, but no
/// further durable state is written.
class DurabilityManager {
 public:
  /// Opens `options.dir` (creating it) and writes an immediate checkpoint
  /// of `index` at `epoch`, so there is always a checkpoint to recover
  /// from. A fresh start passes the defaults; recovery resumes with the
  /// positions Recover() returned, which also retires the replayed WAL.
  static Result<std::unique_ptr<DurabilityManager>> Open(
      const DurabilityOptions& options, const core::TastiIndex& index,
      uint64_t epoch, uint64_t next_lsn = 1, uint64_t wal_segment = 1,
      uint64_t checkpoint_seq = 0);

  /// Buffers one mutation record (reaches disk at the next CommitEpoch).
  Status Log(WalRecord record);

  /// Logs the epoch-publish marker and issues the fsync barrier; then
  /// checkpoints if the configured cadence is due.
  Status CommitEpoch(const core::TastiIndex& index, uint64_t epoch);

  /// Unconditional checkpoint (rotate WAL, write checkpoint + manifest,
  /// GC). The server calls this on shutdown.
  Status Checkpoint(const core::TastiIndex& index, uint64_t epoch);

  /// True when epochs were committed since the last checkpoint.
  bool dirty_since_checkpoint() const { return dirty_since_checkpoint_; }

  const DurabilityStats& stats() const { return stats_; }
  const std::string& dir() const { return dir_; }

 private:
  DurabilityManager(const DurabilityOptions& options, File* fs);
  Status Fail(Status status);
  /// Best-effort removal of checkpoints/segments below the new manifest.
  void CollectGarbage(const Manifest& meta);

  const DurabilityOptions options_;
  File* fs_;
  std::string dir_;
  std::unique_ptr<WalWriter> writer_;
  uint64_t checkpoint_seq_ = 0;
  size_t epochs_since_checkpoint_ = 0;
  bool dirty_since_checkpoint_ = false;
  DurabilityStats stats_;
  Status failure_ = Status::OK();
};

}  // namespace tasti::durable

#endif  // TASTI_DURABLE_CHECKPOINT_H_
