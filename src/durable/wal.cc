#include "durable/wal.h"

#include <cstdio>
#include <cstring>
#include <utility>

#include "labeler/label_codec.h"
#include "util/checksum.h"

namespace tasti::durable {

namespace {

// A frame_len beyond this is garbage even if the buffer could hold it
// (e.g. bit rot inside a length prefix that still lands in-bounds).
constexpr size_t kMaxFrameBytes = 1ull << 30;

template <typename T>
void Put(std::string* out, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>, "Put requires POD");
  out->append(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool Get(const std::string& in, size_t* at, T* value) {
  static_assert(std::is_trivially_copyable_v<T>, "Get requires POD");
  if (*at + sizeof(T) > in.size()) return false;
  std::memcpy(value, in.data() + *at, sizeof(T));
  *at += sizeof(T);
  return true;
}

bool DecodeBody(const std::string& payload, size_t at, WalRecord* record) {
  switch (record->type) {
    case WalRecordType::kCrack: {
      uint64_t count = 0;
      if (!Get(payload, &at, &count)) return false;
      record->records.reserve(count);
      record->labels.reserve(count);
      for (uint64_t i = 0; i < count; ++i) {
        uint64_t record_id = 0;
        data::LabelerOutput label;
        if (!Get(payload, &at, &record_id) ||
            !labeler::DecodeLabel(payload, &at, &label)) {
          return false;
        }
        record->records.push_back(record_id);
        record->labels.push_back(std::move(label));
      }
      return at == payload.size();
    }
    case WalRecordType::kRepair: {
      data::LabelerOutput label;
      if (!Get(payload, &at, &record->rep_pos) ||
          !labeler::DecodeLabel(payload, &at, &label)) {
        return false;
      }
      record->labels.push_back(std::move(label));
      return at == payload.size();
    }
    case WalRecordType::kAppend: {
      uint64_t rows = 0, cols = 0;
      if (!Get(payload, &at, &rows) || !Get(payload, &at, &cols)) return false;
      const size_t bytes = static_cast<size_t>(rows * cols) * sizeof(float);
      if (at + bytes != payload.size()) return false;
      record->features = nn::Matrix(rows, cols);
      std::memcpy(record->features.data(), payload.data() + at, bytes);
      return true;
    }
    case WalRecordType::kEpochPublish:
      return Get(payload, &at, &record->epoch) && at == payload.size();
  }
  return false;
}

}  // namespace

std::string SegmentFileName(uint64_t seq) {
  char name[32];
  std::snprintf(name, sizeof(name), "wal-%06llu.log",
                static_cast<unsigned long long>(seq));
  return name;
}

std::optional<uint64_t> ParseSegmentFileName(const std::string& name) {
  unsigned long long seq = 0;
  int consumed = 0;
  if (std::sscanf(name.c_str(), "wal-%llu.log%n", &seq, &consumed) != 1 ||
      static_cast<size_t>(consumed) != name.size()) {
    return std::nullopt;
  }
  return seq;
}

std::string EncodeWalRecord(const WalRecord& record) {
  std::string payload;
  Put<uint8_t>(&payload, static_cast<uint8_t>(record.type));
  Put<uint64_t>(&payload, record.lsn);
  switch (record.type) {
    case WalRecordType::kCrack:
      Put<uint64_t>(&payload, record.records.size());
      for (size_t i = 0; i < record.records.size(); ++i) {
        Put<uint64_t>(&payload, record.records[i]);
        labeler::EncodeLabel(&payload, record.labels[i]);
      }
      break;
    case WalRecordType::kRepair:
      Put<uint64_t>(&payload, record.rep_pos);
      labeler::EncodeLabel(&payload, record.labels.front());
      break;
    case WalRecordType::kAppend:
      Put<uint64_t>(&payload, record.features.rows());
      Put<uint64_t>(&payload, record.features.cols());
      payload.append(reinterpret_cast<const char*>(record.features.data()),
                     record.features.size() * sizeof(float));
      break;
    case WalRecordType::kEpochPublish:
      Put<uint64_t>(&payload, record.epoch);
      break;
  }
  AppendChecksumFooter(&payload);
  std::string frame;
  frame.reserve(payload.size() + sizeof(uint32_t));
  Put<uint32_t>(&frame, static_cast<uint32_t>(payload.size()));
  frame.append(payload);
  return frame;
}

WalSegment DecodeWalSegment(const std::string& buffer) {
  WalSegment segment;
  size_t at = 0;
  segment.offsets.push_back(0);
  while (at < buffer.size()) {
    uint32_t frame_len = 0;
    size_t cursor = at;
    if (!Get(buffer, &cursor, &frame_len)) break;  // torn length prefix
    if (frame_len > kMaxFrameBytes) {
      segment.corrupt = true;
      segment.error = "implausible frame length " + std::to_string(frame_len);
      break;
    }
    if (cursor + frame_len > buffer.size()) break;  // frame runs off EOF
    const std::string frame = buffer.substr(cursor, frame_len);
    Result<size_t> payload_size = VerifyChecksumFooter(frame);
    if (!payload_size.ok()) {
      segment.corrupt = true;
      segment.error = "frame checksum: " + payload_size.status().message();
      break;
    }
    const std::string payload = frame.substr(0, *payload_size);
    WalRecord record;
    size_t body_at = 0;
    uint8_t type = 0;
    if (!Get(payload, &body_at, &type) ||
        !Get(payload, &body_at, &record.lsn)) {
      segment.corrupt = true;
      segment.error = "truncated frame header";
      break;
    }
    record.type = static_cast<WalRecordType>(type);
    if (type < static_cast<uint8_t>(WalRecordType::kCrack) ||
        type > static_cast<uint8_t>(WalRecordType::kEpochPublish) ||
        !DecodeBody(payload, body_at, &record)) {
      segment.corrupt = true;
      segment.error = "unparseable record body (type " + std::to_string(type) +
                      ", lsn " + std::to_string(record.lsn) + ")";
      break;
    }
    at = cursor + frame_len;
    segment.records.push_back(std::move(record));
    segment.offsets.push_back(at);
  }
  segment.valid_bytes = segment.offsets.back();
  if (!segment.corrupt) {
    segment.torn_bytes = buffer.size() - segment.valid_bytes;
  }
  return segment;
}

WalWriter::WalWriter(File* fs, std::string dir, uint64_t seq,
                     uint64_t next_lsn)
    : fs_(fs),
      dir_(std::move(dir)),
      seq_(seq),
      next_lsn_(next_lsn),
      path_(dir_ + "/" + SegmentFileName(seq)) {}

uint64_t WalWriter::Append(WalRecord record) {
  record.lsn = next_lsn_++;
  buffer_.append(EncodeWalRecord(record));
  return record.lsn;
}

Status WalWriter::Sync() {
  if (buffer_.empty()) return Status::OK();
  TASTI_RETURN_NOT_OK(fs_->Append(path_, buffer_));
  synced_bytes_ += buffer_.size();
  buffer_.clear();
  return Status::OK();
}

}  // namespace tasti::durable
