#include "durable/recovery.h"

#include <algorithm>
#include <optional>
#include <utility>

namespace tasti::durable {

namespace {

void Apply(core::TastiIndex* index, const WalRecord& record,
           RecoveryStats* stats) {
  switch (record.type) {
    case WalRecordType::kCrack: {
      const std::vector<size_t> records(record.records.begin(),
                                        record.records.end());
      index->CrackFromLabels(records, record.labels);
      ++stats->cracks_replayed;
      break;
    }
    case WalRecordType::kRepair:
      index->RepairRepresentative(record.rep_pos, record.labels.front());
      ++stats->repairs_replayed;
      break;
    case WalRecordType::kAppend:
      index->AppendRecords(record.features);
      ++stats->appends_replayed;
      break;
    case WalRecordType::kEpochPublish:
      break;  // handled by the replay loop
  }
}

}  // namespace

Result<RecoveredState> Recover(File* fs, const std::string& dir) {
  if (fs == nullptr) fs = DefaultFile();
  if (!fs->Exists(dir)) {
    return Status::NotFound("no durable state at " + dir);
  }
  RecoveredState out;
  RecoveryStats& stats = out.stats;

  auto quarantine = [&](const std::string& name, const std::string& why) {
    (void)fs->MakeDir(dir + "/quarantine");
    Status moved = fs->Rename(dir + "/" + name, dir + "/quarantine/" + name);
    stats.quarantined_files.push_back(name);
    std::string fault = "quarantined " + name + ": " + why;
    if (!moved.ok()) fault += " (move failed: " + moved.message() + ")";
    stats.faults.push_back(fault);
  };

  // --- 1. Manifest (or fall back to the self-describing checkpoints) ---
  std::optional<Manifest> manifest;
  if (fs->Exists(dir + "/MANIFEST")) {
    Result<std::string> raw = fs->Read(dir + "/MANIFEST");
    Result<Manifest> decoded =
        raw.ok() ? DecodeManifest(*raw) : Result<Manifest>(raw.status());
    if (decoded.ok()) {
      manifest = *decoded;
    } else {
      stats.manifest_missing = true;
      quarantine("MANIFEST", decoded.status().message());
    }
  } else {
    stats.manifest_missing = true;
  }

  Result<std::vector<std::string>> names = fs->List(dir);
  TASTI_RETURN_NOT_OK(names.status());
  uint64_t max_checkpoint_seq = 0;
  for (const std::string& name : *names) {
    if (std::optional<uint64_t> seq = ParseCheckpointFileName(name)) {
      max_checkpoint_seq = std::max(max_checkpoint_seq, *seq);
    }
  }

  // --- 2. Latest loadable checkpoint ---
  std::optional<CheckpointContents> checkpoint;
  auto try_load = [&](const std::string& name) {
    Result<std::string> raw = fs->Read(dir + "/" + name);
    Result<CheckpointContents> decoded =
        raw.ok() ? DecodeCheckpoint(*raw)
                 : Result<CheckpointContents>(raw.status());
    if (decoded.ok()) {
      checkpoint = std::move(*decoded);
      return true;
    }
    quarantine(name, decoded.status().message());
    return false;
  };
  if (manifest.has_value() && !try_load(manifest->checkpoint_file)) {
    manifest.reset();
  }
  if (!checkpoint.has_value()) {
    std::vector<std::pair<uint64_t, std::string>> candidates;
    for (const std::string& name : *names) {
      if (std::optional<uint64_t> seq = ParseCheckpointFileName(name)) {
        candidates.emplace_back(*seq, name);
      }
    }
    std::sort(candidates.rbegin(), candidates.rend());
    for (const auto& [seq, name] : candidates) {
      if (!fs->Exists(dir + "/" + name)) continue;  // already quarantined
      if (try_load(name)) break;
    }
  }
  if (!checkpoint.has_value()) {
    return Status::NotFound("no usable checkpoint in " + dir);
  }
  const Manifest meta = checkpoint->meta;
  stats.checkpoint_seq = meta.checkpoint_seq;
  stats.checkpoint_epoch = meta.epoch;
  out.index = std::move(checkpoint->index);
  out.epoch = meta.epoch;
  out.checkpoint_seq = std::max(max_checkpoint_seq, meta.checkpoint_seq);

  // --- 3. Replay committed WAL records above the high-water mark ---
  std::vector<std::pair<uint64_t, std::string>> segments;
  for (const std::string& name : *names) {
    if (std::optional<uint64_t> seq = ParseSegmentFileName(name)) {
      if (*seq >= meta.wal_segment) segments.emplace_back(*seq, name);
    }
  }
  std::sort(segments.begin(), segments.end());

  uint64_t expect_lsn = meta.next_lsn;
  uint64_t last_good_seq = meta.wal_segment - 1;
  bool stop = false;
  std::string stop_reason;
  for (size_t i = 0; i < segments.size(); ++i) {
    const auto& [seq, name] = segments[i];
    if (stop) {
      // Anything past a bad segment is unreachable by contiguous replay; a
      // resumed writer must not find it either.
      quarantine(name, "follows " + stop_reason);
      continue;
    }
    if (seq != last_good_seq + 1) {
      stop = true;
      stop_reason = "a segment-sequence gap";
      quarantine(name, "segment sequence gap (expected " +
                           SegmentFileName(last_good_seq + 1) + ")");
      continue;
    }
    ++stats.segments_read;
    Result<std::string> raw = fs->Read(dir + "/" + name);
    if (!raw.ok()) {
      stop = true;
      stop_reason = "unreadable segment " + name;
      quarantine(name, raw.status().message());
      continue;
    }
    WalSegment segment = DecodeWalSegment(*raw);
    const bool last = i + 1 == segments.size();
    std::string bad;
    if (segment.corrupt) {
      bad = segment.error;
    } else if (segment.torn_bytes > 0 && !last) {
      // A tear is only plausible at the very end of the log; mid-log it
      // means the file was damaged after being written.
      bad = "torn bytes inside a non-final segment";
    }
    if (bad.empty()) {
      uint64_t lsn = expect_lsn;
      for (const WalRecord& record : segment.records) {
        if (record.lsn != lsn) {
          bad = "LSN discontinuity (expected " + std::to_string(lsn) +
                ", found " + std::to_string(record.lsn) + ")";
          break;
        }
        ++lsn;
      }
    }
    if (!bad.empty()) {
      stop = true;
      stop_reason = "corrupt segment " + name;
      quarantine(name, bad);
      continue;
    }
    // Apply mutations batch-wise at their epoch-publish markers; a batch
    // whose marker never hit the disk was never observable.
    size_t committed_end = 0;
    size_t committed_records = 0;
    std::vector<size_t> pending;
    for (size_t j = 0; j < segment.records.size(); ++j) {
      const WalRecord& record = segment.records[j];
      if (record.type == WalRecordType::kEpochPublish) {
        for (size_t p : pending) Apply(&out.index, segment.records[p], &stats);
        stats.records_replayed += pending.size();
        pending.clear();
        out.epoch = record.epoch;
        ++stats.epochs_replayed;
        committed_end = segment.offsets[j + 1];
        committed_records = j + 1;
      } else {
        pending.push_back(j);
      }
    }
    expect_lsn += committed_records;  // truncated tail LSNs get reused
    stats.uncommitted_records_discarded += pending.size();
    last_good_seq = seq;
    if (committed_end < raw->size()) {
      // Drop the uncommitted/torn tail physically too, so a second
      // recovery — and the writer that resumes appending — reads exactly
      // the state returned here.
      stats.torn_bytes_truncated += raw->size() - committed_end;
      Status truncated =
          fs->Write(dir + "/" + name, raw->substr(0, committed_end));
      if (!truncated.ok()) {
        stats.faults.push_back("could not truncate " + name + ": " +
                               truncated.message());
      }
    }
  }
  out.next_lsn = expect_lsn;
  out.wal_segment = last_good_seq + 1;
  return out;
}

}  // namespace tasti::durable
