#include "durable/checkpoint.h"

#include <cstdio>
#include <cstring>
#include <utility>

#include "core/serialize.h"
#include "util/checksum.h"

namespace tasti::durable {

namespace {

constexpr uint32_t kManifestMagic = 0x4E4D5354;    // "TSMN"
constexpr uint32_t kCheckpointMagic = 0x50435354;  // "TSCP"

template <typename T>
void Put(std::string* out, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>, "Put requires POD");
  out->append(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool Get(const std::string& in, size_t* at, T* value) {
  static_assert(std::is_trivially_copyable_v<T>, "Get requires POD");
  if (*at + sizeof(T) > in.size()) return false;
  std::memcpy(value, in.data() + *at, sizeof(T));
  *at += sizeof(T);
  return true;
}

void PutMeta(std::string* out, const Manifest& meta) {
  Put<uint64_t>(out, meta.checkpoint_seq);
  Put<uint64_t>(out, meta.epoch);
  Put<uint64_t>(out, meta.wal_segment);
  Put<uint64_t>(out, meta.next_lsn);
  Put<uint64_t>(out, meta.checkpoint_file.size());
  out->append(meta.checkpoint_file);
}

bool GetMeta(const std::string& in, size_t* at, Manifest* meta) {
  uint64_t name_size = 0;
  if (!Get(in, at, &meta->checkpoint_seq) || !Get(in, at, &meta->epoch) ||
      !Get(in, at, &meta->wal_segment) || !Get(in, at, &meta->next_lsn) ||
      !Get(in, at, &name_size) || *at + name_size > in.size()) {
    return false;
  }
  meta->checkpoint_file = in.substr(*at, name_size);
  *at += name_size;
  return true;
}

}  // namespace

std::string CheckpointFileName(uint64_t seq) {
  char name[40];
  std::snprintf(name, sizeof(name), "checkpoint-%06llu.ckpt",
                static_cast<unsigned long long>(seq));
  return name;
}

std::optional<uint64_t> ParseCheckpointFileName(const std::string& name) {
  unsigned long long seq = 0;
  int consumed = 0;
  if (std::sscanf(name.c_str(), "checkpoint-%llu.ckpt%n", &seq, &consumed) !=
          1 ||
      static_cast<size_t>(consumed) != name.size()) {
    return std::nullopt;
  }
  return seq;
}

std::string EncodeManifest(const Manifest& manifest, uint32_t version) {
  std::string out;
  Put<uint32_t>(&out, kManifestMagic);
  Put<uint32_t>(&out, version);
  PutMeta(&out, manifest);
  AppendChecksumFooter(&out);
  return out;
}

Result<Manifest> DecodeManifest(const std::string& buffer) {
  Result<size_t> payload_size = VerifyChecksumFooter(buffer);
  TASTI_RETURN_NOT_OK(payload_size.status());
  const std::string payload = buffer.substr(0, *payload_size);
  size_t at = 0;
  uint32_t magic = 0, version = 0;
  if (!Get(payload, &at, &magic) || magic != kManifestMagic) {
    return Status::InvalidArgument("bad magic: not a TASTI manifest");
  }
  if (!Get(payload, &at, &version) || version != kManifestVersion) {
    return Status::InvalidArgument("unsupported manifest version " +
                                   std::to_string(version));
  }
  Manifest manifest;
  if (!GetMeta(payload, &at, &manifest) || at != payload.size()) {
    return Status::InvalidArgument("truncated manifest");
  }
  return manifest;
}

Result<std::string> EncodeCheckpoint(const core::TastiIndex& index,
                                     const Manifest& meta, uint32_t version) {
  Result<std::string> blob = core::IndexSerializer::SerializeToString(index);
  TASTI_RETURN_NOT_OK(blob.status());
  std::string out;
  Put<uint32_t>(&out, kCheckpointMagic);
  Put<uint32_t>(&out, version);
  PutMeta(&out, meta);
  Put<uint64_t>(&out, blob->size());
  out.append(*blob);
  AppendChecksumFooter(&out);
  return out;
}

Result<CheckpointContents> DecodeCheckpoint(const std::string& buffer) {
  Result<size_t> payload_size = VerifyChecksumFooter(buffer);
  TASTI_RETURN_NOT_OK(payload_size.status());
  const std::string payload = buffer.substr(0, *payload_size);
  size_t at = 0;
  uint32_t magic = 0, version = 0;
  if (!Get(payload, &at, &magic) || magic != kCheckpointMagic) {
    return Status::InvalidArgument("bad magic: not a TASTI checkpoint");
  }
  if (!Get(payload, &at, &version) || version != kCheckpointVersion) {
    return Status::InvalidArgument("unsupported checkpoint version " +
                                   std::to_string(version));
  }
  CheckpointContents contents;
  uint64_t blob_size = 0;
  if (!GetMeta(payload, &at, &contents.meta) ||
      !Get(payload, &at, &blob_size) || at + blob_size != payload.size()) {
    return Status::InvalidArgument("truncated checkpoint");
  }
  Result<core::TastiIndex> index = core::IndexSerializer::DeserializeFromString(
      payload.substr(at, blob_size));
  TASTI_RETURN_NOT_OK(index.status());
  contents.index = std::move(*index);
  return contents;
}

DurabilityManager::DurabilityManager(const DurabilityOptions& options, File* fs)
    : options_(options), fs_(fs), dir_(options.dir) {}

Result<std::unique_ptr<DurabilityManager>> DurabilityManager::Open(
    const DurabilityOptions& options, const core::TastiIndex& index,
    uint64_t epoch, uint64_t next_lsn, uint64_t wal_segment,
    uint64_t checkpoint_seq) {
  if (options.dir.empty()) {
    return Status::InvalidArgument("DurabilityOptions::dir is empty");
  }
  File* fs = options.fs != nullptr ? options.fs : DefaultFile();
  std::unique_ptr<DurabilityManager> manager(
      new DurabilityManager(options, fs));
  TASTI_RETURN_NOT_OK(fs->MakeDir(options.dir));
  manager->writer_ = std::make_unique<WalWriter>(fs, options.dir, wal_segment,
                                                 next_lsn);
  manager->checkpoint_seq_ = checkpoint_seq;
  // The immediate checkpoint makes the directory self-sufficient from op
  // one: recovery always has a base to replay onto, and — after a
  // recovery — it retires the segments replay already consumed.
  TASTI_RETURN_NOT_OK(manager->Checkpoint(index, epoch));
  return manager;
}

Status DurabilityManager::Fail(Status status) {
  stats_.failed = true;
  failure_ = status;
  return status;
}

Status DurabilityManager::Log(WalRecord record) {
  if (stats_.failed) return failure_;
  const size_t before = writer_->buffered_bytes();
  writer_->Append(std::move(record));
  ++stats_.records_logged;
  stats_.bytes_logged += writer_->buffered_bytes() - before;
  return Status::OK();
}

Status DurabilityManager::CommitEpoch(const core::TastiIndex& index,
                                      uint64_t epoch) {
  if (stats_.failed) return failure_;
  WalRecord marker;
  marker.type = WalRecordType::kEpochPublish;
  marker.epoch = epoch;
  const size_t before = writer_->buffered_bytes();
  writer_->Append(std::move(marker));
  ++stats_.records_logged;
  stats_.bytes_logged += writer_->buffered_bytes() - before;
  Status synced = writer_->Sync();
  if (!synced.ok()) return Fail(synced);
  ++stats_.syncs;
  ++stats_.epochs_published;
  dirty_since_checkpoint_ = true;
  if (++epochs_since_checkpoint_ >= options_.checkpoint_every_epochs) {
    return Checkpoint(index, epoch);
  }
  return Status::OK();
}

Status DurabilityManager::Checkpoint(const core::TastiIndex& index,
                                     uint64_t epoch) {
  if (stats_.failed) return failure_;
  Status synced = writer_->Sync();
  if (!synced.ok()) return Fail(synced);
  if (writer_->synced_bytes() > 0) {
    // Rotate so the manifest's (wal_segment, next_lsn) mark cleanly bounds
    // replay: everything below it lives in the checkpoint, everything at or
    // above it in segments the GC keeps.
    writer_ = std::make_unique<WalWriter>(fs_, dir_, writer_->segment() + 1,
                                          writer_->next_lsn());
  }
  Manifest meta;
  meta.checkpoint_seq = ++checkpoint_seq_;
  meta.epoch = epoch;
  meta.wal_segment = writer_->segment();
  meta.next_lsn = writer_->next_lsn();
  meta.checkpoint_file = CheckpointFileName(meta.checkpoint_seq);
  Result<std::string> blob = EncodeCheckpoint(index, meta);
  if (!blob.ok()) return Fail(blob.status());
  Status written = fs_->WriteAtomic(dir_ + "/" + meta.checkpoint_file, *blob);
  if (!written.ok()) return Fail(written);
  written = fs_->WriteAtomic(dir_ + "/MANIFEST", EncodeManifest(meta));
  if (!written.ok()) return Fail(written);
  ++stats_.checkpoints_written;
  epochs_since_checkpoint_ = 0;
  dirty_since_checkpoint_ = false;
  CollectGarbage(meta);
  return Status::OK();
}

void DurabilityManager::CollectGarbage(const Manifest& meta) {
  Result<std::vector<std::string>> names = fs_->List(dir_);
  if (!names.ok()) return;
  for (const std::string& name : *names) {
    bool stale = false;
    if (std::optional<uint64_t> seq = ParseCheckpointFileName(name)) {
      stale = *seq < meta.checkpoint_seq;
    } else if (std::optional<uint64_t> seq = ParseSegmentFileName(name)) {
      stale = *seq < meta.wal_segment;
    } else if (name.size() > 4 &&
               name.compare(name.size() - 4, 4, ".tmp") == 0) {
      stale = true;  // stray from an interrupted atomic publish
    }
    // Failures are harmless — recovery never reads below the manifest's
    // high-water mark — and a dead injected filesystem rejects them anyway.
    if (stale && fs_->Remove(dir_ + "/" + name).ok()) {
      ++stats_.segments_deleted;
    }
  }
}

}  // namespace tasti::durable
