#ifndef TASTI_EVAL_REPORTING_H_
#define TASTI_EVAL_REPORTING_H_

/// \file reporting.h
/// Uniform console output for the figure/table benches: a banner naming
/// the experiment, the paper's reference numbers, the measured table, and
/// a diagnostic sink for progress chatter.
///
/// All example/tool diagnostics route through Diag() instead of raw
/// printf, so a single SetQuiet(true) silences progress output (e.g. when
/// a tool's stdout must stay machine-parseable) without touching the
/// call sites.

#include <string>

#include "obs/query_log.h"
#include "util/table.h"

namespace tasti::eval {

/// Prints a boxed experiment banner, e.g.
///   == Figure 4: approximate aggregation (labeler invocations) ==
void PrintBanner(const std::string& title);

/// Prints the paper's reference result for shape comparison, prefixed
/// with "paper:".
void PrintPaperReference(const std::string& text);

/// Prints a table followed by a blank line.
void PrintTable(const TablePrinter& table);

/// Prints a one-line measured takeaway, prefixed with "measured:".
void PrintTakeaway(const std::string& text);

/// Suppresses Diag() output (reports above still print).
void SetQuiet(bool quiet);
bool Quiet();

/// printf-style diagnostic line ("# " prefix, newline appended). No-op
/// when SetQuiet(true) is in effect.
void Diag(const char* format, ...)
#if defined(__GNUC__)
    __attribute__((format(printf, 1, 2)))
#endif
    ;

/// Folds a session's QueryLog into an experiment report: the index
/// charge, one table row per query (type, invocations, phase seconds,
/// human-labeler dollars), and the session totals.
void PrintQueryLog(const obs::QueryLog& log);

}  // namespace tasti::eval

#endif  // TASTI_EVAL_REPORTING_H_
