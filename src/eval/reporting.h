#ifndef TASTI_EVAL_REPORTING_H_
#define TASTI_EVAL_REPORTING_H_

/// \file reporting.h
/// Uniform console output for the figure/table benches: a banner naming
/// the experiment, the paper's reference numbers, and the measured table.

#include <string>

#include "util/table.h"

namespace tasti::eval {

/// Prints a boxed experiment banner, e.g.
///   == Figure 4: approximate aggregation (labeler invocations) ==
void PrintBanner(const std::string& title);

/// Prints the paper's reference result for shape comparison, prefixed
/// with "paper:".
void PrintPaperReference(const std::string& text);

/// Prints a table followed by a blank line.
void PrintTable(const TablePrinter& table);

/// Prints a one-line measured takeaway, prefixed with "measured:".
void PrintTakeaway(const std::string& text);

}  // namespace tasti::eval

#endif  // TASTI_EVAL_REPORTING_H_
