#include "eval/reporting.h"

#include <cstdio>

namespace tasti::eval {

void PrintBanner(const std::string& title) {
  std::printf("\n== %s ==\n", title.c_str());
}

void PrintPaperReference(const std::string& text) {
  std::printf("paper:    %s\n", text.c_str());
}

void PrintTable(const TablePrinter& table) {
  std::printf("%s\n", table.ToString().c_str());
}

void PrintTakeaway(const std::string& text) {
  std::printf("measured: %s\n", text.c_str());
}

}  // namespace tasti::eval
