#include "eval/reporting.h"

#include <cstdarg>
#include <cstdio>

#include "obs/metrics.h"

namespace tasti::eval {

namespace {
bool g_quiet = false;
}  // namespace

void PrintBanner(const std::string& title) {
  std::printf("\n== %s ==\n", title.c_str());
}

void PrintPaperReference(const std::string& text) {
  std::printf("paper:    %s\n", text.c_str());
}

void PrintTable(const TablePrinter& table) {
  std::printf("%s\n", table.ToString().c_str());
}

void PrintTakeaway(const std::string& text) {
  std::printf("measured: %s\n", text.c_str());
}

void SetQuiet(bool quiet) { g_quiet = quiet; }
bool Quiet() { return g_quiet; }

void Diag(const char* format, ...) {
  if (g_quiet) return;
  std::fputs("# ", stdout);
  va_list args;
  va_start(args, format);
  std::vprintf(format, args);
  va_end(args);
  std::fputc('\n', stdout);
}

void PrintQueryLog(const obs::QueryLog& log) {
  std::printf("index build: %s labeler calls, %ss\n",
              FmtCount(static_cast<long long>(log.index_invocations())).c_str(),
              Fmt(log.index_build_seconds(), 3).c_str());
  TablePrinter table({"query", "params", "calls", "proxy s", "algo s",
                      "oracle s", "crack s", "human cost"});
  for (const obs::QueryRecord& q : log.queries()) {
    table.AddRow({q.query_type, q.params,
                  FmtCount(static_cast<long long>(q.labeler_invocations)),
                  Fmt(q.phases.rep_score_seconds + q.phases.propagation_seconds,
                      3),
                  Fmt(q.phases.algorithm_seconds, 3),
                  Fmt(q.phases.oracle_seconds, 3),
                  Fmt(q.phases.crack_seconds, 3),
                  FmtDollars(q.human_dollars)});
  }
  PrintTable(table);
  std::printf("totals: %s labeler calls, %ss across %zu queries\n",
              FmtCount(static_cast<long long>(log.total_invocations())).c_str(),
              Fmt(log.total_query_seconds(), 3).c_str(), log.queries().size());
  if (log.queries().size() >= 2) {
    // Latency quantiles over per-query totals, interpolated from a
    // throwaway histogram (50us .. ~26s exponential buckets).
    obs::Histogram hist(obs::ExponentialBuckets(0.05, 2.0, 20));
    for (const obs::QueryRecord& q : log.queries()) {
      hist.Observe(q.phases.TotalSeconds() * 1000.0);
    }
    std::printf("latency:  p50=%sms p95=%sms p99=%sms\n",
                Fmt(hist.Quantile(0.50), 2).c_str(),
                Fmt(hist.Quantile(0.95), 2).c_str(),
                Fmt(hist.Quantile(0.99), 2).c_str());
  }
}

}  // namespace tasti::eval
