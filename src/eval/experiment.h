#ifndef TASTI_EVAL_EXPERIMENT_H_
#define TASTI_EVAL_EXPERIMENT_H_

/// \file experiment.h
/// Shared plumbing for the benchmark harness: dataset construction at
/// bench scale, cached index variants (TASTI-T / TASTI-PT), per-query
/// proxy training, and the per-dataset default query specs used across
/// the paper's figures.

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "baselines/per_query_proxy.h"
#include "core/index.h"
#include "core/proxy.h"
#include "core/scorer.h"
#include "data/dataset.h"
#include "labeler/labeler.h"

namespace tasti::eval {

/// Experiment scale. The paper's videos have ~1M frames with N1 = 3,000
/// and N2 = 7,000; we default to 20k records with proportionally larger
/// index fractions so statistical behaviour is comparable at laptop scale.
struct ExperimentConfig {
  size_t video_records = 20000;
  size_t video_train = 1000;       ///< N1 for video datasets
  size_t video_reps = 2000;        ///< N2 for video datasets
  size_t text_speech_records = 10000;
  size_t text_speech_train = 500;  ///< paper's WikiSQL/Common Voice setting
  size_t text_speech_reps = 500;
  size_t embedding_dim = 64;
  size_t epochs = 40;
  /// Per-query proxy training budget (the baseline's TMAS share).
  size_t proxy_train_budget = 4000;
  uint64_t seed = 42;

  /// Reads TASTI_BENCH_SCALE (a float; default 1.0) from the environment
  /// and scales record counts, for quick smoke runs of the benches.
  static ExperimentConfig FromEnv();

  size_t RecordsFor(data::DatasetId id) const;
  size_t TrainFor(data::DatasetId id) const;
  size_t RepsFor(data::DatasetId id) const;
};

/// The four methods compared across the paper's figures.
enum class Method { kNoProxy, kPerQueryProxy, kTastiPT, kTastiT };

std::string MethodName(Method method);

/// The standard query suite for one dataset (paper Section 6.1):
/// aggregation statistic, selection predicate, and limit predicate.
struct QuerySpec {
  std::string label;  ///< e.g. "night-street", "taipei (bus)"
  std::unique_ptr<core::Scorer> aggregation;
  std::unique_ptr<core::Scorer> selection;
  std::unique_ptr<core::Scorer> limit_predicate;
  size_t limit_want = 10;
};

/// Default query specs per dataset. taipei yields two specs (car and bus,
/// sharing one index), matching the paper's six figure panels.
std::vector<QuerySpec> DefaultQuerySpecs(data::DatasetId id);

/// A dataset with cached index variants and cost accounting.
class Workbench {
 public:
  Workbench(data::DatasetId id, const ExperimentConfig& config);

  const data::Dataset& dataset() const { return dataset_; }
  data::DatasetId id() const { return id_; }
  const ExperimentConfig& config() const { return config_; }

  /// TASTI with triplet training (built and cached on first use).
  const core::TastiIndex& TastiT();
  /// TASTI with the pretrained embedding only.
  const core::TastiIndex& TastiPT();

  /// Target-labeler invocations spent building each variant.
  size_t TastiTBuildInvocations();
  size_t TastiPTBuildInvocations();

  /// Wall seconds spent building each variant, with oracle (labeler) time
  /// excluded — the build timer pauses around every Label() call, so this
  /// is pure index-construction compute.
  double TastiTBuildSeconds();
  double TastiPTBuildSeconds();

  /// Wall seconds spent inside the oracle during each variant's build.
  double TastiTOracleSeconds();
  double TastiPTOracleSeconds();

  /// Fresh invocation-counting oracle over the dataset.
  std::unique_ptr<labeler::TargetLabeler> MakeOracle() const;

  /// TASTI proxy scores for a scorer.
  std::vector<double> TastiScores(const core::Scorer& scorer, bool trained,
                                  core::PropagationMode mode =
                                      core::PropagationMode::kNumeric);

  /// Trains a per-query proxy for the scorer (charged the configured
  /// budget) and returns its scores + cost.
  baselines::PerQueryProxyResult PerQueryProxy(const core::Scorer& scorer,
                                               uint64_t seed_salt = 0);

  /// Index options used for this dataset (exposed so ablation benches can
  /// perturb them and rebuild manually).
  core::IndexOptions BaseIndexOptions() const;

 private:
  const core::TastiIndex& GetOrBuild(bool trained);

  data::DatasetId id_;
  ExperimentConfig config_;
  data::Dataset dataset_;
  std::optional<core::TastiIndex> tasti_t_;
  std::optional<core::TastiIndex> tasti_pt_;
  size_t tasti_t_invocations_ = 0;
  size_t tasti_pt_invocations_ = 0;
  double tasti_t_build_seconds_ = 0.0;
  double tasti_pt_build_seconds_ = 0.0;
  double tasti_t_oracle_seconds_ = 0.0;
  double tasti_pt_oracle_seconds_ = 0.0;
};

}  // namespace tasti::eval

#endif  // TASTI_EVAL_EXPERIMENT_H_
