#include "eval/experiment.h"

#include <cstdlib>

#include "obs/query_log.h"
#include "util/status.h"
#include "util/timer.h"

namespace tasti::eval {

ExperimentConfig ExperimentConfig::FromEnv() {
  ExperimentConfig config;
  const char* scale_env = std::getenv("TASTI_BENCH_SCALE");
  if (scale_env != nullptr) {
    const double scale = std::atof(scale_env);
    if (scale > 0.0) {
      auto scaled = [scale](size_t v) {
        return static_cast<size_t>(static_cast<double>(v) * scale) + 16;
      };
      config.video_records = scaled(config.video_records);
      config.video_train = scaled(config.video_train);
      config.video_reps = scaled(config.video_reps);
      config.text_speech_records = scaled(config.text_speech_records);
      config.text_speech_train = scaled(config.text_speech_train);
      config.text_speech_reps = scaled(config.text_speech_reps);
      config.proxy_train_budget = scaled(config.proxy_train_budget);
    }
  }
  return config;
}

namespace {
bool IsVideo(data::DatasetId id) {
  return id == data::DatasetId::kNightStreet || id == data::DatasetId::kTaipei ||
         id == data::DatasetId::kAmsterdam;
}
}  // namespace

size_t ExperimentConfig::RecordsFor(data::DatasetId id) const {
  return IsVideo(id) ? video_records : text_speech_records;
}
size_t ExperimentConfig::TrainFor(data::DatasetId id) const {
  return IsVideo(id) ? video_train : text_speech_train;
}
size_t ExperimentConfig::RepsFor(data::DatasetId id) const {
  return IsVideo(id) ? video_reps : text_speech_reps;
}

std::string MethodName(Method method) {
  switch (method) {
    case Method::kNoProxy:
      return "No proxy";
    case Method::kPerQueryProxy:
      return "Per-query proxy";
    case Method::kTastiPT:
      return "TASTI-PT";
    case Method::kTastiT:
      return "TASTI-T";
  }
  return "unknown";
}

std::vector<QuerySpec> DefaultQuerySpecs(data::DatasetId id) {
  using data::ObjectClass;
  std::vector<QuerySpec> specs;
  // Selection predicates target the rarer side of each dataset (multi-car
  // frames, buses): at simulation scale, majority-class presence is too
  // easy for every method to separate, whereas the paper's pixel-level
  // predicates are hard; rare predicates restore the paper's difficulty.
  auto make_video_spec = [](std::string label, ObjectClass cls,
                            int selection_count, int limit_count, size_t want) {
    QuerySpec spec;
    spec.label = std::move(label);
    spec.aggregation = std::make_unique<core::CountScorer>(cls);
    if (selection_count <= 1) {
      spec.selection = std::make_unique<core::PresenceScorer>(cls);
    } else {
      spec.selection =
          std::make_unique<core::AtLeastCountScorer>(cls, selection_count);
    }
    spec.limit_predicate =
        std::make_unique<core::AtLeastCountScorer>(cls, limit_count);
    spec.limit_want = want;
    return spec;
  };
  switch (id) {
    case data::DatasetId::kNightStreet:
      specs.push_back(
          make_video_spec("night-street", ObjectClass::kCar, 2, 6, 10));
      break;
    case data::DatasetId::kTaipei:
      specs.push_back(
          make_video_spec("taipei (car)", ObjectClass::kCar, 2, 6, 10));
      specs.push_back(
          make_video_spec("taipei (bus)", ObjectClass::kBus, 1, 2, 10));
      break;
    case data::DatasetId::kAmsterdam:
      specs.push_back(make_video_spec("amsterdam", ObjectClass::kCar, 2, 4, 10));
      break;
    case data::DatasetId::kWikiSql: {
      QuerySpec spec;
      spec.label = "wikisql";
      spec.aggregation = std::make_unique<core::PredicateCountScorer>();
      // Complex questions (>= 3 predicates): the boundary sits between
      // adjacent predicate counts, which is genuinely ambiguous in feature
      // space (unlike the operator one-hot, which is trivially separable
      // at simulation scale).
      spec.selection = std::make_unique<core::LambdaScorer>(
          [](const data::LabelerOutput& output) {
            const auto* text = std::get_if<data::TextLabel>(&output);
            return (text != nullptr && text->num_predicates >= 3) ? 1.0 : 0.0;
          },
          /*categorical=*/true, "preds>=3");
      // Rare event: MIN questions with 4 predicates (~0.3%).
      spec.limit_predicate = std::make_unique<core::LambdaScorer>(
          [](const data::LabelerOutput& output) {
            const auto* text = std::get_if<data::TextLabel>(&output);
            return (text != nullptr && text->op == data::SqlOp::kMin &&
                    text->num_predicates >= 4)
                       ? 1.0
                       : 0.0;
          },
          /*categorical=*/true, "op=MIN&preds>=4");
      spec.limit_want = 10;
      specs.push_back(std::move(spec));
      break;
    }
    case data::DatasetId::kCommonVoice: {
      QuerySpec spec;
      spec.label = "common-voice";
      spec.aggregation = std::make_unique<core::MaleScorer>();
      spec.selection = std::make_unique<core::MaleScorer>();
      // Rare event: speakers aged 70+.
      spec.limit_predicate = std::make_unique<core::LambdaScorer>(
          [](const data::LabelerOutput& output) {
            const auto* speech = std::get_if<data::SpeechLabel>(&output);
            return (speech != nullptr && speech->age_years >= 70) ? 1.0 : 0.0;
          },
          /*categorical=*/true, "age>=70");
      spec.limit_want = 10;
      specs.push_back(std::move(spec));
      break;
    }
  }
  return specs;
}

Workbench::Workbench(data::DatasetId id, const ExperimentConfig& config)
    : id_(id), config_(config) {
  data::DatasetOptions dataset_options;
  dataset_options.num_records = config.RecordsFor(id);
  dataset_options.seed = config.seed;
  dataset_ = data::MakeDataset(id, dataset_options);
}

core::IndexOptions Workbench::BaseIndexOptions() const {
  core::IndexOptions options;
  options.num_training_records = config_.TrainFor(id_);
  options.num_representatives = config_.RepsFor(id_);
  options.embedding_dim = config_.embedding_dim;
  options.epochs = config_.epochs;
  options.seed = config_.seed * 7 + 1;
  return options;
}

const core::TastiIndex& Workbench::GetOrBuild(bool trained) {
  auto& slot = trained ? tasti_t_ : tasti_pt_;
  if (!slot.has_value()) {
    core::IndexOptions options = BaseIndexOptions();
    options.use_triplet_training = trained;
    labeler::SimulatedLabeler oracle(&dataset_);
    labeler::CachingLabeler cache(&oracle);
    // The build timer pauses inside every oracle call, so build seconds
    // measure pure construction compute (what a faster oracle would not
    // change) and oracle seconds the labeling charge.
    WallTimer build_timer;
    obs::TimedLabeler timed(&cache, &build_timer);
    slot = core::TastiIndex::Build(dataset_, &timed, options);
    build_timer.Pause();
    (trained ? tasti_t_invocations_ : tasti_pt_invocations_) =
        oracle.invocations();
    (trained ? tasti_t_build_seconds_ : tasti_pt_build_seconds_) =
        build_timer.Seconds();
    (trained ? tasti_t_oracle_seconds_ : tasti_pt_oracle_seconds_) =
        timed.seconds();
  }
  return *slot;
}

const core::TastiIndex& Workbench::TastiT() { return GetOrBuild(true); }
const core::TastiIndex& Workbench::TastiPT() { return GetOrBuild(false); }

size_t Workbench::TastiTBuildInvocations() {
  TastiT();
  return tasti_t_invocations_;
}
size_t Workbench::TastiPTBuildInvocations() {
  TastiPT();
  return tasti_pt_invocations_;
}

double Workbench::TastiTBuildSeconds() {
  TastiT();
  return tasti_t_build_seconds_;
}
double Workbench::TastiPTBuildSeconds() {
  TastiPT();
  return tasti_pt_build_seconds_;
}
double Workbench::TastiTOracleSeconds() {
  TastiT();
  return tasti_t_oracle_seconds_;
}
double Workbench::TastiPTOracleSeconds() {
  TastiPT();
  return tasti_pt_oracle_seconds_;
}

std::unique_ptr<labeler::TargetLabeler> Workbench::MakeOracle() const {
  return std::make_unique<labeler::SimulatedLabeler>(&dataset_);
}

std::vector<double> Workbench::TastiScores(const core::Scorer& scorer,
                                           bool trained,
                                           core::PropagationMode mode) {
  return core::ComputeProxyScores(GetOrBuild(trained), scorer, mode);
}

baselines::PerQueryProxyResult Workbench::PerQueryProxy(
    const core::Scorer& scorer, uint64_t seed_salt) {
  baselines::ProxyTrainOptions options;
  options.num_training_records = config_.proxy_train_budget;
  options.seed = config_.seed * 31 + 7 + seed_salt;
  labeler::SimulatedLabeler oracle(&dataset_);
  return baselines::TrainPerQueryProxy(dataset_.features, &oracle, scorer,
                                       options);
}

}  // namespace tasti::eval
