#ifndef TASTI_BASELINES_UNIFORM_H_
#define TASTI_BASELINES_UNIFORM_H_

/// \file uniform.h
/// Proxy-free baselines: uniform sampling for aggregation (plain EBS mean
/// estimation, the paper's "No proxy" bars) and exhaustive labeling (the
/// upper bound of Table 1).

#include <cstdint>
#include <vector>

#include "core/scorer.h"
#include "labeler/labeler.h"
#include "queries/aggregation.h"

namespace tasti::baselines {

/// Aggregation with uniform sampling and no control variate. Equivalent to
/// queries::EstimateMean with use_control_variate = false and constant
/// proxies.
queries::AggregationResult UniformAggregate(
    labeler::TargetLabeler* labeler, const core::Scorer& scorer,
    const queries::AggregationOptions& options);

/// Labels every record and returns the exact mean. Costs n invocations.
double ExhaustiveMean(labeler::TargetLabeler* labeler, const core::Scorer& scorer);

}  // namespace tasti::baselines

#endif  // TASTI_BASELINES_UNIFORM_H_
