#include "baselines/per_query_proxy.h"

#include <algorithm>

#include "nn/mlp.h"
#include "nn/optimizer.h"
#include "util/random.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace tasti::baselines {

PerQueryProxyResult TrainPerQueryProxy(const nn::Matrix& features,
                                       labeler::TargetLabeler* labeler,
                                       const core::Scorer& scorer,
                                       const ProxyTrainOptions& options) {
  TASTI_CHECK(labeler != nullptr, "TrainPerQueryProxy requires a labeler");
  TASTI_CHECK(features.rows() == labeler->num_records(),
              "features/labeler record count mismatch");
  TASTI_CHECK(options.num_training_records >= 2, "need at least 2 records");

  Rng rng(options.seed);
  const size_t n = features.rows();
  const size_t budget = std::min(options.num_training_records, n);

  // Uniform training sample, annotated by the target labeler.
  const std::vector<size_t> train_indices = rng.SampleWithoutReplacement(n, budget);
  std::vector<float> targets;
  targets.reserve(budget);
  for (size_t record : train_indices) {
    targets.push_back(static_cast<float>(scorer.Score(labeler->Label(record))));
  }
  const nn::Matrix train_features = features.GatherRows(train_indices);

  // MSE regression with Adam.
  nn::Mlp model = nn::Mlp::MakeProxyNet(features.cols(), options.hidden_dim, &rng);
  nn::Adam::Options adam_options;
  adam_options.learning_rate = options.learning_rate;
  nn::Adam optimizer(model.Params(), adam_options);

  std::vector<size_t> order(budget);
  for (size_t i = 0; i < budget; ++i) order[i] = i;

  PerQueryProxyResult result;
  result.labeler_invocations = budget;

  for (size_t epoch = 0; epoch < options.epochs; ++epoch) {
    rng.Shuffle(&order);
    double epoch_mse = 0.0;
    size_t batches = 0;
    for (size_t start = 0; start < budget; start += options.batch_size) {
      const size_t end = std::min(budget, start + options.batch_size);
      const size_t b = end - start;
      std::vector<size_t> rows(order.begin() + start, order.begin() + end);
      const nn::Matrix batch = train_features.GatherRows(rows);

      model.ZeroGrad();
      const nn::Matrix pred = model.Forward(batch);
      nn::Matrix grad(b, 1);
      double mse = 0.0;
      for (size_t i = 0; i < b; ++i) {
        const float err = pred.At(i, 0) - targets[rows[i]];
        mse += err * err;
        grad.At(i, 0) = 2.0f * err / static_cast<float>(b);
      }
      model.Backward(grad);
      optimizer.Step();
      epoch_mse += mse / static_cast<double>(b);
      ++batches;
    }
    result.final_mse = batches > 0 ? epoch_mse / batches : 0.0;
  }

  // Score every record (blockwise, multithreaded).
  result.scores.assign(n, 0.0);
  ParallelFor(0, n, [&](size_t lo, size_t hi) {
    const nn::Matrix block = features.RowSlice(lo, hi);
    const nn::Matrix pred = model.Infer(block);
    for (size_t r = lo; r < hi; ++r) result.scores[r] = pred.At(r - lo, 0);
  }, 512);
  return result;
}

}  // namespace tasti::baselines
