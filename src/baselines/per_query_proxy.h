#ifndef TASTI_BASELINES_PER_QUERY_PROXY_H_
#define TASTI_BASELINES_PER_QUERY_PROXY_H_

/// \file per_query_proxy.h
/// The prior-work baseline: a query-specific proxy model (BlazeIt's "tiny
/// ResNet", SUPG's proxies, NoScope's specialized NNs), reimplemented as a
/// small MLP regressor trained on target-labeler annotations of a uniform
/// sample of records.
///
/// Per the paper's accounting, the annotations used to train the proxy
/// are charged to the query (or to the BlazeIt TMAS when shared), and a
/// new model must be trained per query — exactly the costs TASTI removes.

#include <cstdint>
#include <memory>
#include <vector>

#include "core/scorer.h"
#include "labeler/labeler.h"
#include "nn/matrix.h"

namespace tasti::baselines {

/// Training configuration for a per-query proxy model.
struct ProxyTrainOptions {
  /// Labeler annotations spent on training data (BlazeIt-style TMAS).
  size_t num_training_records = 5000;
  /// Proxy models are deliberately tiny — they must be orders of magnitude
  /// cheaper than the target labeler at inference (the paper's "tiny
  /// ResNet" / CNN-10 / logistic regression). The embedding DNN (hidden
  /// 128) is the larger network, as in the paper (ResNet-18 embedder vs
  /// tiny proxies).
  size_t hidden_dim = 32;
  size_t epochs = 30;
  size_t batch_size = 64;
  float learning_rate = 1e-3f;
  /// Fraction of the training sample held out to normalize scores.
  uint64_t seed = 404;
};

/// A trained per-query proxy and its costs.
struct PerQueryProxyResult {
  /// Proxy scores for every record.
  std::vector<double> scores;
  /// Labeler invocations consumed for training data.
  size_t labeler_invocations = 0;
  /// Final training mean-squared error.
  double final_mse = 0.0;
};

/// Trains an MLP to regress the scorer output from sensor features, then
/// scores every record. Classification queries (0/1 scorers) use the same
/// regression, matching how prior systems threshold a scalar output.
PerQueryProxyResult TrainPerQueryProxy(const nn::Matrix& features,
                                       labeler::TargetLabeler* labeler,
                                       const core::Scorer& scorer,
                                       const ProxyTrainOptions& options);

}  // namespace tasti::baselines

#endif  // TASTI_BASELINES_PER_QUERY_PROXY_H_
