#include "baselines/uniform.h"

namespace tasti::baselines {

queries::AggregationResult UniformAggregate(
    labeler::TargetLabeler* labeler, const core::Scorer& scorer,
    const queries::AggregationOptions& options) {
  queries::AggregationOptions no_proxy = options;
  no_proxy.use_control_variate = false;
  const std::vector<double> constant_proxy(labeler->num_records(), 0.0);
  return queries::EstimateMean(constant_proxy, labeler, scorer, no_proxy);
}

double ExhaustiveMean(labeler::TargetLabeler* labeler,
                      const core::Scorer& scorer) {
  double sum = 0.0;
  const size_t n = labeler->num_records();
  for (size_t i = 0; i < n; ++i) {
    sum += scorer.Score(labeler->Label(i));
  }
  return n > 0 ? sum / static_cast<double>(n) : 0.0;
}

}  // namespace tasti::baselines
