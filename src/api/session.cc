#include "api/session.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/status.h"
#include "util/timer.h"

namespace tasti::api {

namespace {

std::string FmtDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

}  // namespace

TastiSession::TastiSession(const data::Dataset* dataset,
                           labeler::TargetLabeler* labeler,
                           SessionOptions options)
    : dataset_(dataset), options_(std::move(options)) {
  TASTI_CHECK(dataset != nullptr, "TastiSession requires a dataset");
  TASTI_CHECK(labeler != nullptr, "TastiSession requires a labeler");
  TASTI_CHECK(labeler->num_records() == dataset->size(),
              "labeler/dataset record count mismatch");
  owned_adapter_ = std::make_unique<labeler::FallibleAdapter>(labeler);
  oracle_ = owned_adapter_.get();
}

TastiSession::TastiSession(const data::Dataset* dataset,
                           labeler::FallibleLabeler* oracle,
                           SessionOptions options)
    : dataset_(dataset), oracle_(oracle), options_(std::move(options)) {
  TASTI_CHECK(dataset != nullptr, "TastiSession requires a dataset");
  TASTI_CHECK(oracle != nullptr, "TastiSession requires an oracle");
  TASTI_CHECK(oracle->num_records() == dataset->size(),
              "oracle/dataset record count mismatch");
}

void TastiSession::EnsureIndex() {
  if (index_.has_value()) return;
  TASTI_SPAN("session.build_index");
  WallTimer timer;
  const size_t before = oracle_->invocations();
  labeler::CachingFallibleLabeler cache(oracle_);
  index_ = core::TastiIndex::Build(*dataset_, &cache, options_.index);
  index_invocations_ = oracle_->invocations() - before;
  total_invocations_ += index_invocations_;
  query_log_.RecordIndexBuild(index_invocations_, timer.Seconds());
}

uint64_t TastiSession::NextSeed() {
  return DeriveQuerySeed(options_.seed,
                         static_cast<uint64_t>(++queries_executed_));
}

const std::vector<double>& TastiSession::ProxyScores(
    const core::Scorer& scorer, core::PropagationMode mode) {
  EnsureIndex();
  const std::string key =
      scorer.Name() + "#" + std::to_string(static_cast<int>(mode));
  auto it = proxy_cache_.find(key);
  if (it == proxy_cache_.end()) {
    core::ProxyTimings timings;
    it = proxy_cache_
             .emplace(key, core::ComputeProxyScores(*index_, scorer, mode, {},
                                                    &timings))
             .first;
    last_proxy_timings_ = timings;
  }
  return it->second;
}

size_t TastiSession::RepairFailedReps() {
  if (!options_.repair_failed_reps ||
      index_->num_failed_representatives() == 0) {
    return 0;
  }
  TASTI_SPAN("session.repair_reps");
  const std::vector<size_t> positions =
      index_->failed_representative_positions();
  const std::vector<size_t> records = index_->failed_rep_record_ids();
  const size_t attempts =
      std::min(positions.size(), options_.max_rep_repairs_per_query);
  size_t repaired = 0;
  for (size_t i = 0; i < attempts; ++i) {
    Result<data::LabelerOutput> label = oracle_->TryLabel(records[i]);
    if (!label.ok()) continue;  // still failing; retried after a later query
    index_->RepairRepresentative(positions[i], *std::move(label));
    ++repaired;
  }
  reps_repaired_ += repaired;
  if (repaired > 0) {
    // Repaired representatives re-enter propagation.
    proxy_cache_.clear();
  }
  return repaired;
}

void TastiSession::FinishQuery(const labeler::CachingFallibleLabeler& cache,
                               size_t invocations_before,
                               std::string query_type, std::string params,
                               double algorithm_seconds, double oracle_seconds,
                               size_t failed_oracle_calls) {
  // Repairs run inside the query's accounting window so the attribution
  // invariant (index + sum of queries == oracle invocations) still holds.
  const size_t repaired = RepairFailedReps();
  const size_t query_invocations =
      oracle_->invocations() - invocations_before;
  total_invocations_ += query_invocations;

  size_t cracked = 0;
  double crack_seconds = 0.0;
  if (options_.auto_crack) {
    TASTI_SPAN("session.crack");
    WallTimer timer;
    const std::vector<size_t>& labeled = cache.labeled_indices();
    std::vector<data::LabelerOutput> labels;
    labels.reserve(labeled.size());
    for (size_t record : labeled) {
      std::optional<data::LabelerOutput> label = cache.CachedLabel(record);
      TASTI_CHECK(label.has_value(), "labeled index without a cached label");
      labels.push_back(*std::move(label));
    }
    cracked = index_->CrackFromLabels(labeled, labels);
    crack_seconds = timer.Seconds();
    if (cracked > 0) {
      // New representatives change every propagated score.
      proxy_cache_.clear();
    }
  }

  obs::QueryRecord record;
  record.query_type = std::move(query_type);
  record.params = std::move(params);
  record.phases.rep_score_seconds = last_proxy_timings_.rep_score_seconds;
  record.phases.propagation_seconds = last_proxy_timings_.propagation_seconds;
  record.phases.algorithm_seconds = algorithm_seconds;
  record.phases.oracle_seconds = oracle_seconds;
  record.phases.crack_seconds = crack_seconds;
  record.labeler_invocations = query_invocations;
  record.cracked_representatives = cracked;
  record.failed_oracle_calls = failed_oracle_calls;
  record.repaired_representatives = repaired;
  query_log_.AddQuery(std::move(record));

  if (obs::MetricsEnabled()) {
    static obs::Counter* const queries =
        obs::MetricsRegistry::Global().counter("session.queries", "queries");
    static obs::Counter* const invocations =
        obs::MetricsRegistry::Global().counter("session.query_invocations",
                                               "calls");
    static obs::Counter* const cracked_reps =
        obs::MetricsRegistry::Global().counter("session.cracked_reps",
                                               "representatives");
    static obs::Counter* const failed_calls =
        obs::MetricsRegistry::Global().counter("session.failed_oracle_calls",
                                               "calls");
    static obs::Counter* const repaired_reps =
        obs::MetricsRegistry::Global().counter("session.repaired_reps",
                                               "representatives");
    queries->Increment();
    invocations->Increment(query_invocations);
    cracked_reps->Increment(cracked);
    failed_calls->Increment(failed_oracle_calls);
    repaired_reps->Increment(repaired);
  }
}

queries::AggregationResult TastiSession::Aggregate(const core::Scorer& statistic,
                                                   double error_target) {
  TASTI_SPAN("query.aggregate");
  last_proxy_timings_ = {};
  const std::vector<double> proxy = ProxyScores(statistic);
  const size_t before = oracle_->invocations();
  labeler::CachingFallibleLabeler cache(oracle_);
  queries::AggregationOptions opts;
  opts.error_target = error_target;
  opts.confidence = options_.confidence;
  opts.seed = NextSeed();
  WallTimer algo_timer;
  obs::TimedOracle timed(&cache, &algo_timer);
  Result<queries::AggregationResult> r =
      queries::TryEstimateMean(proxy, &timed, statistic, opts);
  algo_timer.Pause();
  last_query_status_ = r.status();
  queries::AggregationResult result =
      r.ok() ? std::move(r).value() : queries::AggregationResult{};
  if (!last_query_status_.ok()) {
    result.failed_oracle_calls = oracle_->invocations() - before;
  }
  FinishQuery(cache, before, "aggregate",
              "scorer=" + statistic.Name() +
                  " error_target=" + FmtDouble(error_target),
              algo_timer.Seconds(), timed.seconds(),
              result.failed_oracle_calls);
  return result;
}

queries::PredicateAggregationResult TastiSession::AggregateWhere(
    const core::Scorer& predicate, const core::Scorer& statistic,
    double error_target) {
  TASTI_SPAN("query.aggregate_where");
  last_proxy_timings_ = {};
  const std::vector<double> proxy = ProxyScores(predicate);
  const size_t before = oracle_->invocations();
  labeler::CachingFallibleLabeler cache(oracle_);
  queries::PredicateAggregationOptions opts;
  opts.error_target = error_target;
  opts.confidence = options_.confidence;
  opts.seed = NextSeed();
  WallTimer algo_timer;
  obs::TimedOracle timed(&cache, &algo_timer);
  Result<queries::PredicateAggregationResult> r =
      queries::TryEstimateMeanWithPredicate(proxy, &timed, predicate,
                                            statistic, opts);
  algo_timer.Pause();
  last_query_status_ = r.status();
  queries::PredicateAggregationResult result =
      r.ok() ? std::move(r).value() : queries::PredicateAggregationResult{};
  if (!last_query_status_.ok()) {
    result.failed_oracle_calls = oracle_->invocations() - before;
  }
  FinishQuery(cache, before, "aggregate_where",
              "predicate=" + predicate.Name() + " statistic=" +
                  statistic.Name() + " error_target=" + FmtDouble(error_target),
              algo_timer.Seconds(), timed.seconds(),
              result.failed_oracle_calls);
  return result;
}

queries::SupgResult TastiSession::SelectWithRecall(const core::Scorer& predicate,
                                                   double recall_target,
                                                   size_t budget) {
  TASTI_SPAN("query.select_recall");
  last_proxy_timings_ = {};
  const std::vector<double> proxy = ProxyScores(predicate);
  const size_t before = oracle_->invocations();
  labeler::CachingFallibleLabeler cache(oracle_);
  queries::SupgOptions opts;
  opts.recall_target = recall_target;
  opts.confidence = options_.confidence;
  opts.budget = budget;
  opts.seed = NextSeed();
  WallTimer algo_timer;
  obs::TimedOracle timed(&cache, &algo_timer);
  Result<queries::SupgResult> r =
      queries::TrySupgRecallSelect(proxy, &timed, predicate, opts);
  algo_timer.Pause();
  last_query_status_ = r.status();
  queries::SupgResult result = r.ok() ? std::move(r).value()
                                      : queries::SupgResult{};
  if (!last_query_status_.ok()) {
    result.failed_oracle_calls = oracle_->invocations() - before;
  }
  FinishQuery(cache, before, "supg_recall",
              "predicate=" + predicate.Name() +
                  " recall_target=" + FmtDouble(recall_target) +
                  " budget=" + std::to_string(budget),
              algo_timer.Seconds(), timed.seconds(),
              result.failed_oracle_calls);
  return result;
}

queries::SupgResult TastiSession::SelectWithPrecision(
    const core::Scorer& predicate, double precision_target, size_t budget) {
  TASTI_SPAN("query.select_precision");
  last_proxy_timings_ = {};
  const std::vector<double> proxy = ProxyScores(predicate);
  const size_t before = oracle_->invocations();
  labeler::CachingFallibleLabeler cache(oracle_);
  queries::SupgPrecisionOptions opts;
  opts.precision_target = precision_target;
  opts.confidence = options_.confidence;
  opts.budget = budget;
  opts.seed = NextSeed();
  WallTimer algo_timer;
  obs::TimedOracle timed(&cache, &algo_timer);
  Result<queries::SupgResult> r =
      queries::TrySupgPrecisionSelect(proxy, &timed, predicate, opts);
  algo_timer.Pause();
  last_query_status_ = r.status();
  queries::SupgResult result = r.ok() ? std::move(r).value()
                                      : queries::SupgResult{};
  if (!last_query_status_.ok()) {
    result.failed_oracle_calls = oracle_->invocations() - before;
  }
  FinishQuery(cache, before, "supg_precision",
              "predicate=" + predicate.Name() +
                  " precision_target=" + FmtDouble(precision_target) +
                  " budget=" + std::to_string(budget),
              algo_timer.Seconds(), timed.seconds(),
              result.failed_oracle_calls);
  return result;
}

queries::ThresholdSelectResult TastiSession::Select(const core::Scorer& predicate,
                                                    size_t validation_budget) {
  TASTI_SPAN("query.select");
  last_proxy_timings_ = {};
  const std::vector<double> proxy = ProxyScores(predicate);
  const size_t before = oracle_->invocations();
  labeler::CachingFallibleLabeler cache(oracle_);
  queries::ThresholdSelectOptions opts;
  opts.validation_budget = validation_budget;
  opts.seed = NextSeed();
  WallTimer algo_timer;
  obs::TimedOracle timed(&cache, &algo_timer);
  Result<queries::ThresholdSelectResult> r =
      queries::TryThresholdSelect(proxy, &timed, predicate, opts);
  algo_timer.Pause();
  last_query_status_ = r.status();
  queries::ThresholdSelectResult result =
      r.ok() ? std::move(r).value() : queries::ThresholdSelectResult{};
  if (!last_query_status_.ok()) {
    result.failed_oracle_calls = oracle_->invocations() - before;
  }
  FinishQuery(cache, before, "threshold_select",
              "predicate=" + predicate.Name() + " validation_budget=" +
                  std::to_string(validation_budget),
              algo_timer.Seconds(), timed.seconds(),
              result.failed_oracle_calls);
  return result;
}

queries::LimitResult TastiSession::Limit(const core::Scorer& predicate,
                                         size_t want) {
  TASTI_SPAN("query.limit");
  last_proxy_timings_ = {};
  const std::vector<double> ranking =
      ProxyScores(predicate, core::PropagationMode::kLimit);
  const size_t before = oracle_->invocations();
  labeler::CachingFallibleLabeler cache(oracle_);
  queries::LimitOptions opts;
  opts.want = want;
  WallTimer algo_timer;
  obs::TimedOracle timed(&cache, &algo_timer);
  Result<queries::LimitResult> r =
      queries::TryLimitQuery(ranking, &timed, predicate, opts);
  algo_timer.Pause();
  last_query_status_ = r.status();
  queries::LimitResult result = r.ok() ? std::move(r).value()
                                       : queries::LimitResult{};
  if (!last_query_status_.ok()) {
    result.failed_oracle_calls = oracle_->invocations() - before;
  }
  ++queries_executed_;
  FinishQuery(cache, before, "limit",
              "predicate=" + predicate.Name() + " want=" + std::to_string(want),
              algo_timer.Seconds(), timed.seconds(),
              result.failed_oracle_calls);
  return result;
}

double TastiSession::EstimateDirect(const core::Scorer& statistic) {
  TASTI_SPAN("query.estimate_direct");
  return queries::DirectAggregate(ProxyScores(statistic));
}

const core::TastiIndex& TastiSession::index() {
  EnsureIndex();
  return *index_;
}

core::TastiIndex& TastiSession::mutable_index() {
  EnsureIndex();
  return *index_;
}

}  // namespace tasti::api
