#include "api/session.h"

#include "util/status.h"

namespace tasti::api {

TastiSession::TastiSession(const data::Dataset* dataset,
                           labeler::TargetLabeler* labeler,
                           SessionOptions options)
    : dataset_(dataset), labeler_(labeler), options_(options) {
  TASTI_CHECK(dataset != nullptr, "TastiSession requires a dataset");
  TASTI_CHECK(labeler != nullptr, "TastiSession requires a labeler");
  TASTI_CHECK(labeler->num_records() == dataset->size(),
              "labeler/dataset record count mismatch");
}

void TastiSession::EnsureIndex() {
  if (index_.has_value()) return;
  const size_t before = labeler_->invocations();
  labeler::CachingLabeler cache(labeler_);
  index_ = core::TastiIndex::Build(*dataset_, &cache, options_.index);
  index_invocations_ = labeler_->invocations() - before;
  total_invocations_ += index_invocations_;
}

uint64_t TastiSession::NextSeed() {
  return options_.seed * 2654435761ULL +
         static_cast<uint64_t>(++queries_executed_) * 97;
}

const std::vector<double>& TastiSession::ProxyScores(
    const core::Scorer& scorer, core::PropagationMode mode) {
  EnsureIndex();
  const std::string key =
      scorer.Name() + "#" + std::to_string(static_cast<int>(mode));
  auto it = proxy_cache_.find(key);
  if (it == proxy_cache_.end()) {
    it = proxy_cache_
             .emplace(key, core::ComputeProxyScores(*index_, scorer, mode))
             .first;
  }
  return it->second;
}

void TastiSession::FinishQuery(const labeler::CachingLabeler& cache,
                               size_t invocations_before) {
  total_invocations_ += labeler_->invocations() - invocations_before;
  if (!options_.auto_crack) return;
  if (index_->CrackFrom(cache) > 0) {
    // New representatives change every propagated score.
    proxy_cache_.clear();
  }
}

queries::AggregationResult TastiSession::Aggregate(const core::Scorer& statistic,
                                                   double error_target) {
  const std::vector<double> proxy = ProxyScores(statistic);
  const size_t before = labeler_->invocations();
  labeler::CachingLabeler cache(labeler_);
  queries::AggregationOptions opts;
  opts.error_target = error_target;
  opts.confidence = options_.confidence;
  opts.seed = NextSeed();
  queries::AggregationResult result =
      queries::EstimateMean(proxy, &cache, statistic, opts);
  FinishQuery(cache, before);
  return result;
}

queries::PredicateAggregationResult TastiSession::AggregateWhere(
    const core::Scorer& predicate, const core::Scorer& statistic,
    double error_target) {
  const std::vector<double> proxy = ProxyScores(predicate);
  const size_t before = labeler_->invocations();
  labeler::CachingLabeler cache(labeler_);
  queries::PredicateAggregationOptions opts;
  opts.error_target = error_target;
  opts.confidence = options_.confidence;
  opts.seed = NextSeed();
  queries::PredicateAggregationResult result = queries::EstimateMeanWithPredicate(
      proxy, &cache, predicate, statistic, opts);
  FinishQuery(cache, before);
  return result;
}

queries::SupgResult TastiSession::SelectWithRecall(const core::Scorer& predicate,
                                                   double recall_target,
                                                   size_t budget) {
  const std::vector<double> proxy = ProxyScores(predicate);
  const size_t before = labeler_->invocations();
  labeler::CachingLabeler cache(labeler_);
  queries::SupgOptions opts;
  opts.recall_target = recall_target;
  opts.confidence = options_.confidence;
  opts.budget = budget;
  opts.seed = NextSeed();
  queries::SupgResult result =
      queries::SupgRecallSelect(proxy, &cache, predicate, opts);
  FinishQuery(cache, before);
  return result;
}

queries::SupgResult TastiSession::SelectWithPrecision(
    const core::Scorer& predicate, double precision_target, size_t budget) {
  const std::vector<double> proxy = ProxyScores(predicate);
  const size_t before = labeler_->invocations();
  labeler::CachingLabeler cache(labeler_);
  queries::SupgPrecisionOptions opts;
  opts.precision_target = precision_target;
  opts.confidence = options_.confidence;
  opts.budget = budget;
  opts.seed = NextSeed();
  queries::SupgResult result =
      queries::SupgPrecisionSelect(proxy, &cache, predicate, opts);
  FinishQuery(cache, before);
  return result;
}

queries::ThresholdSelectResult TastiSession::Select(const core::Scorer& predicate,
                                                    size_t validation_budget) {
  const std::vector<double> proxy = ProxyScores(predicate);
  const size_t before = labeler_->invocations();
  labeler::CachingLabeler cache(labeler_);
  queries::ThresholdSelectOptions opts;
  opts.validation_budget = validation_budget;
  opts.seed = NextSeed();
  queries::ThresholdSelectResult result =
      queries::ThresholdSelect(proxy, &cache, predicate, opts);
  FinishQuery(cache, before);
  return result;
}

queries::LimitResult TastiSession::Limit(const core::Scorer& predicate,
                                         size_t want) {
  const std::vector<double> ranking =
      ProxyScores(predicate, core::PropagationMode::kLimit);
  const size_t before = labeler_->invocations();
  labeler::CachingLabeler cache(labeler_);
  queries::LimitOptions opts;
  opts.want = want;
  queries::LimitResult result =
      queries::LimitQuery(ranking, &cache, predicate, opts);
  ++queries_executed_;
  FinishQuery(cache, before);
  return result;
}

double TastiSession::EstimateDirect(const core::Scorer& statistic) {
  return queries::DirectAggregate(ProxyScores(statistic));
}

const core::TastiIndex& TastiSession::index() {
  EnsureIndex();
  return *index_;
}

core::TastiIndex& TastiSession::mutable_index() {
  EnsureIndex();
  return *index_;
}

}  // namespace tasti::api
