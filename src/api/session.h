#ifndef TASTI_API_SESSION_H_
#define TASTI_API_SESSION_H_

/// \file session.h
/// TastiSession: the one-object API a downstream application uses.
///
/// A session owns one TASTI index over a dataset and exposes the paper's
/// query types as single calls. It handles everything the paper describes
/// around the index automatically:
///  - lazy construction on first query (charging the target labeler),
///  - proxy-score caching per (scorer, propagation) pair,
///  - index cracking after every query (paper Section 3.3): each query's
///    target-labeler annotations become new representatives, so queries
///    get cheaper over time,
///  - labeler-invocation accounting across the session.
///
///   labeler::SimulatedLabeler oracle(&dataset);
///   api::TastiSession session(&dataset, &oracle, {});
///   auto agg = session.Aggregate(core::CountScorer(kCar), 0.05);
///   auto sel = session.SelectWithRecall(core::PresenceScorer(kCar), 0.9, 500);
///   auto lim = session.Limit(core::AtLeastCountScorer(kCar, 5), 10);

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/index.h"
#include "core/proxy.h"
#include "core/scorer.h"
#include "data/dataset.h"
#include "labeler/labeler.h"
#include "labeler/resilient.h"
#include "obs/query_log.h"
#include "queries/aggregation.h"
#include "queries/limit.h"
#include "queries/noguarantee.h"
#include "queries/predicate_aggregation.h"
#include "queries/supg.h"

namespace tasti::api {

/// Deterministic per-query seed: the stream a session (or the serving
/// layer) hands query number `n` (1-based) under base seed `base`. Shared
/// by TastiSession and serve::TastiServer so a served query with a known
/// id draws the same randomness regardless of scheduling interleaving.
inline uint64_t DeriveQuerySeed(uint64_t base, uint64_t n) {
  return base * 2654435761ULL + n * 97;
}

/// Session-wide configuration.
struct SessionOptions {
  /// Index construction parameters (N1/N2/k/...).
  core::IndexOptions index;
  /// Crack the index with each query's annotations (recommended).
  bool auto_crack = true;
  /// Re-attempt oracle annotation of failed representatives after each
  /// query (self-healing; only relevant with a fallible oracle).
  bool repair_failed_reps = true;
  /// Cap on repair attempts per query, bounding the extra oracle cost.
  size_t max_rep_repairs_per_query = 16;
  /// Success probability shared by all guarantee-carrying queries.
  double confidence = 0.95;
  /// Base seed; each query perturbs it deterministically.
  uint64_t seed = 1234;
};

/// One TASTI index + query processing, behind a single object.
/// Not thread-safe; use one session per thread.
class TastiSession {
 public:
  /// The dataset and labeler must outlive the session.
  TastiSession(const data::Dataset* dataset, labeler::TargetLabeler* labeler,
               SessionOptions options);

  /// Fallible-oracle session: queries run degraded when oracle calls fail
  /// (see last_query_status()), the index builds with placeholder labels
  /// for failed representatives, and cracking repairs them over time. The
  /// dataset and oracle must outlive the session.
  TastiSession(const data::Dataset* dataset, labeler::FallibleLabeler* oracle,
               SessionOptions options);

  // --- Queries (each consumes target-labeler invocations) ---

  /// Mean of `statistic` over all records, within `error_target` with the
  /// session confidence (BlazeIt-style EBS with the index's proxy).
  queries::AggregationResult Aggregate(const core::Scorer& statistic,
                                       double error_target);

  /// Mean of `statistic` over records matching `predicate`.
  queries::PredicateAggregationResult AggregateWhere(
      const core::Scorer& predicate, const core::Scorer& statistic,
      double error_target);

  /// Recall-target selection (SUPG): returns >= `recall_target` of all
  /// matches with the session confidence, spending `budget` labeler calls.
  queries::SupgResult SelectWithRecall(const core::Scorer& predicate,
                                       double recall_target, size_t budget);

  /// Precision-target selection (SUPG).
  queries::SupgResult SelectWithPrecision(const core::Scorer& predicate,
                                          double precision_target,
                                          size_t budget);

  /// Selection without guarantees: threshold fit on a labeled validation
  /// sample (NoScope-style).
  queries::ThresholdSelectResult Select(const core::Scorer& predicate,
                                        size_t validation_budget);

  /// Find `want` records matching `predicate`, examining proxy-ranked
  /// records with the labeler.
  queries::LimitResult Limit(const core::Scorer& predicate, size_t want);

  /// Direct (no-guarantee, zero-labeler-call) estimate of the mean of
  /// `statistic`: the mean of its proxy scores.
  double EstimateDirect(const core::Scorer& statistic);

  // --- Introspection ---

  /// The underlying index; builds it if no query has run yet.
  const core::TastiIndex& index();

  /// Mutable access for advanced uses (streaming AppendRecords, manual
  /// cracking). Invalidate cached proxies afterwards with
  /// InvalidateProxyCache().
  core::TastiIndex& mutable_index();

  /// Drops cached proxy scores (call after mutating the index directly).
  void InvalidateProxyCache() { proxy_cache_.clear(); }

  /// True once the index has been constructed.
  bool index_built() const { return index_.has_value(); }

  /// Target-labeler invocations consumed so far (index + all queries).
  size_t total_labeler_invocations() const { return total_invocations_; }

  /// Labeler invocations spent on index construction only.
  size_t index_invocations() const { return index_invocations_; }

  /// Queries executed so far.
  size_t queries_executed() const { return queries_executed_; }

  /// Status of the most recent query. OK when the query produced a usable
  /// (possibly degraded) result; an error — e.g. Unavailable when every
  /// oracle call failed — means the returned result was a default value.
  const Status& last_query_status() const { return last_query_status_; }

  /// Failed representatives repaired across the session so far.
  size_t representatives_repaired() const { return reps_repaired_; }

  /// Per-query cost ledger: one record per query with wall time split by
  /// phase, labeler invocations attributed to that query, and their price
  /// under the Table-1 cost model. The attribution invariant
  /// (index + sum of queries == labeler->invocations()) holds when the
  /// labeler entered the session with a zero invocation counter.
  const obs::QueryLog& query_log() const { return query_log_; }
  obs::QueryLog& mutable_query_log() { return query_log_; }

  /// Proxy scores for a scorer (cached until the next crack).
  const std::vector<double>& ProxyScores(
      const core::Scorer& scorer,
      core::PropagationMode mode = core::PropagationMode::kNumeric);

 private:
  void EnsureIndex();
  uint64_t NextSeed();
  // Re-attempts oracle annotation of failed representatives (capped by
  // max_rep_repairs_per_query). Returns the number repaired.
  size_t RepairFailedReps();
  // Runs after every query: repairs failed representatives (their oracle
  // cost is attributed to this query), accounts the oracle calls the query
  // consumed, cracks the index with the query's labels, invalidates cached
  // proxies if anything changed, and appends the query's record to the
  // log. `algorithm_seconds` is pure algorithm time (the TimedOracle
  // pauses the timer inside oracle calls); `oracle_seconds` is the wall
  // time inside those calls.
  void FinishQuery(const labeler::CachingFallibleLabeler& cache,
                   size_t invocations_before, std::string query_type,
                   std::string params, double algorithm_seconds,
                   double oracle_seconds, size_t failed_oracle_calls);

  const data::Dataset* dataset_;
  labeler::FallibleLabeler* oracle_ = nullptr;
  // Owns the adapter when the session was built from a TargetLabeler.
  std::unique_ptr<labeler::FallibleAdapter> owned_adapter_;
  SessionOptions options_;
  std::optional<core::TastiIndex> index_;
  std::unordered_map<std::string, std::vector<double>> proxy_cache_;
  size_t total_invocations_ = 0;
  size_t index_invocations_ = 0;
  size_t queries_executed_ = 0;
  size_t reps_repaired_ = 0;
  Status last_query_status_ = Status::OK();
  obs::QueryLog query_log_;
  // Proxy phase times of the current query; zero when ProxyScores hits
  // its cache. Reset by each query method before calling ProxyScores.
  core::ProxyTimings last_proxy_timings_;
};

}  // namespace tasti::api

#endif  // TASTI_API_SESSION_H_
