// Figure 5: false positive rate for recall-target SUPG selection queries
// (recall 90%, confidence 95%, fixed labeler budget), across six panels
// and three methods.
//
// Paper result: TASTI lowers the FPR on every panel, by up to 21x vs
// per-query proxies (e.g. night-street 53.5% -> 13.3% -> 7.0%), and
// triplet training (TASTI-T) beats the pretrained variant.

#include <cstdio>

#include "bench_common.h"
#include "core/proxy.h"
#include "eval/experiment.h"
#include "eval/reporting.h"
#include "queries/supg.h"
#include "util/table.h"

using namespace tasti;

namespace {

double MeanFpr(eval::Workbench* bench, const std::vector<double>& proxy,
               const core::Scorer& predicate, const std::vector<double>& truth,
               size_t budget, uint64_t base_seed) {
  return bench::MeanOverTrials(
      [&](uint64_t seed) {
        auto oracle = bench->MakeOracle();
        queries::SupgOptions opts;
        opts.recall_target = 0.9;
        opts.confidence = 0.95;
        opts.budget = budget;
        opts.seed = seed;
        queries::SupgResult result =
            queries::SupgRecallSelect(proxy, oracle.get(), predicate, opts);
        return queries::FalsePositiveRate(result.selected, truth);
      },
      base_seed);
}

}  // namespace

int main() {
  eval::PrintBanner(
      "Figure 5: SUPG recall-target selection, false positive rate (lower is "
      "better); recall 90% @ 95% confidence");
  eval::PrintPaperReference(
      "night-street: Per-query 53.5% | TASTI-PT 13.3% | TASTI-T 7.0% "
      "(TASTI lowers FPR on all 6 panels, up to 21x)");

  eval::ExperimentConfig config = eval::ExperimentConfig::FromEnv();
  TablePrinter table(
      {"panel", "Per-query proxy", "TASTI-PT", "TASTI-T", "recall (T)"});

  for (data::DatasetId id : data::AllDatasetIds()) {
    eval::Workbench bench(id, config);
    const size_t budget = bench.dataset().size() / 40;  // fixed oracle budget
    for (const eval::QuerySpec& spec : eval::DefaultQuerySpecs(id)) {
      const core::Scorer& predicate = *spec.selection;
      const std::vector<double> truth =
          core::ExactScores(bench.dataset(), predicate);

      const auto pq = bench.PerQueryProxy(predicate, 21);
      const double pq_fpr =
          MeanFpr(&bench, pq.scores, predicate, truth, budget, 31);
      const auto pt_scores = bench.TastiScores(predicate, false);
      const double pt_fpr =
          MeanFpr(&bench, pt_scores, predicate, truth, budget, 32);
      const auto t_scores = bench.TastiScores(predicate, true);
      const double t_fpr =
          MeanFpr(&bench, t_scores, predicate, truth, budget, 33);

      // Report achieved recall for the TASTI-T run (must clear 90%).
      const double recall = bench::MeanOverTrials(
          [&](uint64_t seed) {
            auto oracle = bench.MakeOracle();
            queries::SupgOptions opts;
            opts.budget = budget;
            opts.seed = seed;
            queries::SupgResult result = queries::SupgRecallSelect(
                t_scores, oracle.get(), predicate, opts);
            return queries::AchievedRecall(result.selected, truth);
          },
          34);

      table.AddRow({spec.label, FmtPercent(pq_fpr), FmtPercent(pt_fpr),
                    FmtPercent(t_fpr), FmtPercent(recall)});
    }
  }
  eval::PrintTable(table);
  eval::PrintTakeaway(
      "TASTI-T achieves the lowest FPR on every panel while meeting the "
      "90% recall target");
  return 0;
}
