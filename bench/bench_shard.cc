// Emits BENCH_shard.json: {kernel, n, d, ns_per_op} rows showing what
// sharding buys — construction parallelism and shard-local crack
// republish cost.
//
// Gated pair (bench_compare.py compares the scalar/blocked ratio, which is
// a same-machine ratio and therefore transfers across hosts):
//
//   crack_republish_scalar   crack a 32-record batch into the monolithic
//                            K=1 index: every added representative updates
//                            the min-k lists of all N records
//   crack_republish_blocked  crack the same-size batch routed to its
//                            owning shard of a K=4 ShardedIndex: the
//                            republish touches ~N/4 records, so the ratio
//                            tracks K
//
// Informational rows (absolute wall time; presence-checked only, since
// construction speedup depends on core count):
//
//   construction_k1          monolithic build wall time (ns per record)
//   construction_k4          4-shard parallel build wall time (ns/record)
//
//   bench_shard [output.json]  (default: BENCH_shard.json)

#include <algorithm>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "core/index.h"
#include "data/dataset.h"
#include "eval/reporting.h"
#include "labeler/labeler.h"
#include "shard/sharded_index.h"
#include "util/timer.h"

namespace tasti {
namespace {

/// Median of 5 timed repetitions of fn(rep) in ns. Unlike the throughput
/// benches this times single calls: a crack mutates the index, so each
/// repetition needs a distinct record batch (TastiIndex is move-only and
/// cannot be copied back to a pristine state per call).
double MedianNsPerCall(size_t reps, const std::function<void(size_t)>& fn) {
  std::vector<double> samples;
  for (size_t rep = 0; rep < reps; ++rep) {
    WallTimer timer;
    fn(rep);
    samples.push_back(timer.Seconds() * 1e9);
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

struct Row {
  std::string kernel;
  size_t n;
  size_t d;
  double ns_per_op;
};

}  // namespace
}  // namespace tasti

int main(int argc, char** argv) {
  using namespace tasti;
  const char* out_path = argc > 1 ? argv[1] : "BENCH_shard.json";

  // Large enough that per-crack min-k updates dominate and the K=1 / K=4
  // republish costs separate cleanly; pretrained embeddings skip triplet
  // training, which is irrelevant to both measurements.
  const size_t kRecords = 16000;
  const size_t kShards = 4;
  data::DatasetOptions ds_opts;
  ds_opts.num_records = kRecords;
  ds_opts.seed = 7;
  data::Dataset ds = data::MakeNightStreet(ds_opts);
  labeler::SimulatedLabeler oracle(&ds);
  labeler::FallibleAdapter adapter(&oracle);

  core::IndexOptions index_opts;
  index_opts.use_triplet_training = false;
  index_opts.num_representatives = 800;
  index_opts.embedding_dim = 32;
  index_opts.k = 5;
  index_opts.seed = 5;

  std::vector<Row> rows;
  const size_t dim = index_opts.embedding_dim;

  // --- construction: monolithic vs parallel sharded build ---
  WallTimer mono_timer;
  core::TastiIndex mono = core::TastiIndex::Build(ds, &adapter, index_opts);
  const double mono_seconds = mono_timer.Seconds();

  shard::ShardedIndexOptions shard_opts;
  shard_opts.num_shards = kShards;
  shard_opts.index = index_opts;
  shard::ShardedIndex sharded(&ds, shard_opts);
  WallTimer shard_timer;
  if (!sharded.Build(&adapter).ok()) {
    std::fprintf(stderr, "sharded build failed\n");
    return 1;
  }
  const double shard_seconds = shard_timer.Seconds();
  rows.push_back({"construction_k1", kRecords, dim,
                  mono_seconds * 1e9 / static_cast<double>(kRecords)});
  rows.push_back({"construction_k4", kRecords, dim,
                  shard_seconds * 1e9 / static_cast<double>(kRecords)});
  eval::Diag("construction: K=1 %.2fs, K=%zu %.2fs (%.2fx; core-bound, "
             "not gated)",
             mono_seconds, kShards, shard_seconds,
             mono_seconds / shard_seconds);

  // --- crack republish: full-index vs shard-local min-k update ---
  // Each timed call cracks a fresh 32-record batch (annotation batches of
  // one query); both sides get the same batch count and size, and both
  // batches live in shard 0's range so the sharded side exercises the
  // routing path.
  const size_t kBatches = 9;
  const size_t shard0_end = sharded.partitioner().ShardEnd(0);
  std::vector<std::vector<size_t>> mono_batches;
  std::vector<std::vector<size_t>> shard_batches;
  {
    std::vector<size_t> current;
    for (size_t r = 0; r < shard0_end; ++r) {
      if (mono.IsRepresentative(r) || sharded.IsRepresentative(r)) continue;
      current.push_back(r);
      if (current.size() == 32 * 2) {
        std::vector<size_t> a(current.begin(), current.begin() + 32);
        std::vector<size_t> b(current.begin() + 32, current.end());
        mono_batches.push_back(a);
        shard_batches.push_back(b);
        current.clear();
        if (mono_batches.size() == 2 * kBatches) break;
      }
    }
  }
  if (mono_batches.size() < kBatches) {
    std::fprintf(stderr, "not enough non-representative records\n");
    return 1;
  }
  auto labels_for = [&](const std::vector<size_t>& records) {
    std::vector<data::LabelerOutput> labels;
    labels.reserve(records.size());
    for (size_t r : records) labels.push_back(ds.ground_truth[r]);
    return labels;
  };

  rows.push_back({"crack_republish_scalar", kRecords, dim,
                  MedianNsPerCall(kBatches, [&](size_t rep) {
                    mono.CrackFromLabels(mono_batches[rep],
                                         labels_for(mono_batches[rep]));
                  })});
  rows.push_back({"crack_republish_blocked", kRecords, dim,
                  MedianNsPerCall(kBatches, [&](size_t rep) {
                    sharded.CrackFromLabels(shard_batches[rep],
                                            labels_for(shard_batches[rep]));
                  })});

  FILE* out = std::fopen(out_path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path);
    return 1;
  }
  std::fprintf(out, "[\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    std::fprintf(out,
                 "  {\"kernel\": \"%s\", \"n\": %zu, \"d\": %zu, "
                 "\"ns_per_op\": %.1f}%s\n",
                 rows[i].kernel.c_str(), rows[i].n, rows[i].d,
                 rows[i].ns_per_op, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "]\n");
  std::fclose(out);

  eval::Diag("%-24s %14.0f ns/op", rows[2].kernel.c_str(), rows[2].ns_per_op);
  eval::Diag("%-24s %14.0f ns/op  (%.2fx: republish scales with shard "
             "size, not index size)",
             rows[3].kernel.c_str(), rows[3].ns_per_op,
             rows[2].ns_per_op / rows[3].ns_per_op);
  eval::Diag("wrote %s", out_path);
  return 0;
}
