// Figure 11: sensitivity to the number of cluster representatives
// ("buckets"), night-street, aggregation + limit queries, with the
// per-query proxy baseline as a flat reference line.
//
// Paper result: performance improves with more buckets; TASTI beats the
// baseline with as few as 50 buckets for aggregation and ~5,000 (of ~1M
// frames) for limit queries.

#include <cstdio>

#include "bench_common.h"
#include "core/index.h"
#include "core/proxy.h"
#include "core/scorer.h"
#include "eval/experiment.h"
#include "eval/reporting.h"
#include "labeler/labeler.h"
#include "queries/limit.h"
#include "util/table.h"

using namespace tasti;

int main() {
  eval::PrintBanner(
      "Figure 11: number of buckets (representatives) vs performance, "
      "night-street");
  eval::PrintPaperReference(
      "TASTI improves with more buckets; beats baselines from 50 buckets "
      "(agg) / mid-range (limit)");

  eval::ExperimentConfig config = eval::ExperimentConfig::FromEnv();
  eval::Workbench bench(data::DatasetId::kNightStreet, config);
  const double target = bench::AggErrorTargetFor(bench.id());

  core::CountScorer agg_scorer(data::ObjectClass::kCar);
  core::AtLeastCountScorer limit_predicate(data::ObjectClass::kCar, 6);
  queries::LimitOptions limit_opts;
  limit_opts.want = 10;

  TablePrinter table({"method", "buckets", "aggregation calls", "limit calls"});

  // Per-query proxy reference (bucket count does not apply).
  {
    const auto pq_agg = bench.PerQueryProxy(agg_scorer, 91);
    const double agg = bench::MeanAggInvocations(&bench, pq_agg.scores,
                                                 agg_scorer, target, 910);
    const auto pq_limit = bench.PerQueryProxy(limit_predicate, 92);
    auto oracle = bench.MakeOracle();
    const size_t limit =
        queries::LimitQuery(pq_limit.scores, oracle.get(), limit_predicate,
                            limit_opts)
            .labeler_invocations;
    table.AddRow({"Per-query proxy", "-", FmtCount(static_cast<long long>(agg)),
                  FmtCount(static_cast<long long>(limit))});
  }

  for (size_t buckets : {50, 500, 1000, 2000, 3000, 4000}) {
    core::IndexOptions opts = bench.BaseIndexOptions();
    opts.num_representatives = buckets;
    labeler::SimulatedLabeler oracle(&bench.dataset());
    labeler::CachingLabeler cache(&oracle);
    core::TastiIndex index =
        core::TastiIndex::Build(bench.dataset(), &cache, opts);

    const auto agg_proxy = core::ComputeProxyScores(index, agg_scorer);
    const double agg = bench::MeanAggInvocations(&bench, agg_proxy, agg_scorer,
                                                 target, 920 + buckets);
    const auto limit_proxy = core::ComputeProxyScores(
        index, limit_predicate, core::PropagationMode::kLimit);
    auto limit_oracle = bench.MakeOracle();
    const size_t limit =
        queries::LimitQuery(limit_proxy, limit_oracle.get(), limit_predicate,
                            limit_opts)
            .labeler_invocations;
    table.AddRow({"TASTI-T", FmtCount(static_cast<long long>(buckets)),
                  FmtCount(static_cast<long long>(agg)),
                  FmtCount(static_cast<long long>(limit))});
  }
  eval::PrintTable(table);
  eval::PrintTakeaway(
      "aggregation is competitive even with very few buckets; limit "
      "queries need enough buckets to cover the rare tail");
  return 0;
}
