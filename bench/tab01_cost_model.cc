// Table 1: total query cost for the night-street aggregation query under
// three target labelers (human / Mask R-CNN / SSD) and four strategies:
// TASTI with index cost amortized, TASTI including index construction,
// uniform sampling (no proxy), and exhaustive labeling.
//
// Paper result:
//   Human:      $1,482 | $1,972 | $3,717 | $68,116
//   Mask R-CNN: 7,060s | 9,474s | 17,702s | 324,362s
//   SSD:          141s |   269s |    354s |   6,487s
// TASTI is cheapest in every row even when paying for the index; SSD as a
// target labeler is cheap but 33% less accurate.

#include <cstdio>

#include "bench_common.h"
#include "baselines/uniform.h"
#include "core/proxy.h"
#include "eval/experiment.h"
#include "eval/reporting.h"
#include "labeler/cost_model.h"
#include "labeler/labeler.h"
#include "queries/noguarantee.h"
#include "util/table.h"

using namespace tasti;

namespace {

std::string FormatCost(labeler::LabelerKind kind, double cost) {
  if (labeler::CostModel::IsDollars(kind)) return FmtDollars(cost);
  return FmtCount(static_cast<long long>(cost)) + " s";
}

}  // namespace

int main() {
  eval::PrintBanner(
      "Table 1: query costs for aggregation on night-street, by target "
      "labeler");
  eval::PrintPaperReference(
      "Human: $1,482 | $1,972 | $3,717 | $68,116 -- TASTI cheapest in all "
      "rows, even including index construction");

  eval::ExperimentConfig config = eval::ExperimentConfig::FromEnv();
  eval::Workbench bench(data::DatasetId::kNightStreet, config);
  core::CountScorer scorer(data::ObjectClass::kCar);
  const double target = bench::AggErrorTargetFor(bench.id());
  const size_t n = bench.dataset().size();

  // Measure invocation counts once; the cost model converts to $/s.
  const auto t_scores = bench.TastiScores(scorer, true);
  const double tasti_query_calls =
      bench::MeanAggInvocations(&bench, t_scores, scorer, target, 101);
  const size_t index_calls = bench.TastiTBuildInvocations();
  const double uniform_calls = bench::MeanOverTrials([&](uint64_t seed) {
    auto oracle = bench.MakeOracle();
    queries::AggregationOptions opts;
    opts.error_target = target;
    opts.seed = seed;
    return static_cast<double>(
        baselines::UniformAggregate(oracle.get(), scorer, opts)
            .labeler_invocations);
  });

  labeler::CostModel cost;
  // Index compute overhead: the measured wall-clock of this build (the
  // paper's fixed GPU-hour overhead does not amortize at 20k records).
  const double compute_seconds = bench.TastiT().build_stats().TotalSeconds() +
                                 static_cast<double>(n) *
                                     cost.embedding_seconds_per_record;
  TablePrinter table({"Target", "TASTI (no index)", "TASTI (all costs)",
                      "Uniform (no proxy)", "Exhaustive"});
  for (labeler::LabelerKind kind :
       {labeler::LabelerKind::kHuman, labeler::LabelerKind::kMaskRCnn,
        labeler::LabelerKind::kSsd}) {
    const double compute_overhead =
        labeler::CostModel::IsDollars(kind)
            ? compute_seconds / 3600.0 * 3.0  // GPU billed at $3/hour
            : compute_seconds;
    const double query_cost = cost.LabelCost(kind, tasti_query_calls);
    const double all_costs =
        query_cost + cost.LabelCost(kind, index_calls) + compute_overhead;
    const double uniform = cost.LabelCost(kind, uniform_calls);
    const double exhaustive = cost.LabelCost(kind, n);
    table.AddRow({labeler::LabelerKindName(kind), FormatCost(kind, query_cost),
                  FormatCost(kind, all_costs), FormatCost(kind, uniform),
                  FormatCost(kind, exhaustive)});
  }
  eval::PrintTable(table);

  // The accuracy footnote: SSD as a target labeler is cheaper but degrades
  // the answer itself (paper: 33% error vs Mask R-CNN).
  labeler::DegradationOptions degradation;  // SSD-like error model
  labeler::DegradedLabeler ssd(&bench.dataset(), degradation);
  const double ssd_mean = baselines::ExhaustiveMean(&ssd, scorer);
  auto exact_oracle = bench.MakeOracle();
  const double exact_mean = baselines::ExhaustiveMean(exact_oracle.get(), scorer);
  eval::PrintTakeaway(
      "TASTI is cheapest in every row; using SSD as the target labeler "
      "biases the answer by " +
      FmtPercent(queries::PercentError(ssd_mean, exact_mean)) +
      " (paper: 33%)");
  return 0;
}
