// Figure 2: breakdown of index-construction time for TASTI vs BlazeIt's
// target-model annotated set (TMAS) on night-street.
//
// Paper result: the TMAS (running Mask R-CNN over a large frame subset)
// dwarfs every TASTI component; TASTI's labeler budget is the only
// meaningful cost and is several times smaller.

#include <cstdio>

#include "bench_common.h"
#include "eval/experiment.h"
#include "eval/reporting.h"
#include "labeler/cost_model.h"
#include "util/table.h"

using namespace tasti;

int main() {
  eval::PrintBanner(
      "Figure 2: index construction breakdown, night-street (TASTI vs BlazeIt TMAS)");
  eval::PrintPaperReference(
      "TMAS dominates BlazeIt construction (~5x TASTI's total); TASTI's "
      "components: target-labeler calls >> train > embed > cluster");

  eval::ExperimentConfig config = eval::ExperimentConfig::FromEnv();
  eval::Workbench bench(data::DatasetId::kNightStreet, config);
  (void)bench.TastiT();  // build the index and record stats
  const core::BuildStats& stats = bench.TastiT().build_stats();

  labeler::CostModel cost;
  const double labeler_rate = cost.mask_rcnn_seconds_per_label;

  // BlazeIt's TMAS: the target labeler over a training subset large enough
  // for its per-query proxies (we use 4x the per-query budget to reflect a
  // multi-query TMAS, conservative versus the paper's ratios).
  const size_t tmas_labels = config.proxy_train_budget * 4;

  TablePrinter table({"system", "component", "labeler calls", "est. seconds"});
  table.AddRow({"BlazeIt", "TMAS (Mask R-CNN over subset)", FmtCount(tmas_labels),
                Fmt(tmas_labels * labeler_rate, 0)});
  table.AddRow({"TASTI", "train annotations (N1)",
                FmtCount(static_cast<long long>(stats.training_invocations)),
                Fmt(stats.training_invocations * labeler_rate, 0)});
  table.AddRow({"TASTI", "rep annotations (N2)",
                FmtCount(static_cast<long long>(stats.rep_invocations)),
                Fmt(stats.rep_invocations * labeler_rate, 0)});
  table.AddRow({"TASTI", "triplet training (compute)", "0",
                Fmt(stats.train_seconds, 1)});
  table.AddRow({"TASTI", "embedding all records (compute)", "0",
                Fmt(stats.embed_seconds, 1)});
  table.AddRow({"TASTI", "FPF clustering (compute)", "0",
                Fmt(stats.cluster_seconds, 1)});
  table.AddRow({"TASTI", "min-k distances (compute)", "0",
                Fmt(stats.distance_seconds, 1)});
  eval::PrintTable(table);

  const double tasti_seconds =
      stats.TotalInvocations() * labeler_rate + stats.TotalSeconds();
  const double blazeit_seconds = tmas_labels * labeler_rate;
  eval::PrintTakeaway(
      "TASTI construction " + Fmt(tasti_seconds, 0) + "s vs BlazeIt TMAS " +
      Fmt(blazeit_seconds, 0) + "s  (" + Fmt(blazeit_seconds / tasti_seconds, 1) +
      "x cheaper; labeler calls " +
      FmtCount(static_cast<long long>(stats.TotalInvocations())) + " vs " +
      FmtCount(static_cast<long long>(tmas_labels)) + ")");
  return 0;
}
