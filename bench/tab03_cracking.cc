// Table 3: index cracking — running one query, folding the target-labeler
// annotations it produced back into the index as new representatives, and
// measuring a second query.
//
// Paper result (night-street / taipei): cracking improves both the
// SUPG-after-aggregation and aggregation-after-SUPG orders, e.g.
// night-street agg->SUPG FPR 8.6% -> 4.9%, SUPG->agg 21.2k -> 18.9k.

#include <cstdio>

#include "bench_common.h"
#include "core/index.h"
#include "core/proxy.h"
#include "eval/experiment.h"
#include "eval/reporting.h"
#include "labeler/labeler.h"
#include "queries/supg.h"
#include "util/table.h"

using namespace tasti;

namespace {

// Builds a fresh index for the dataset (smaller than the default so that
// cracking has headroom, mirroring the paper's repeated-query setting).
core::TastiIndex BuildIndex(eval::Workbench* bench) {
  core::IndexOptions opts = bench->BaseIndexOptions();
  opts.num_representatives = opts.num_representatives / 2;
  labeler::SimulatedLabeler oracle(&bench->dataset());
  labeler::CachingLabeler cache(&oracle);
  return core::TastiIndex::Build(bench->dataset(), &cache, opts);
}

double RunSupgFpr(eval::Workbench* bench, const core::TastiIndex& index,
                  const core::Scorer& predicate,
                  labeler::CachingLabeler* cache, uint64_t seed) {
  const auto proxy = core::ComputeProxyScores(index, predicate);
  const auto truth = core::ExactScores(bench->dataset(), predicate);
  queries::SupgOptions opts;
  opts.budget = bench->dataset().size() / 40;
  opts.seed = seed;
  queries::SupgResult result =
      queries::SupgRecallSelect(proxy, cache, predicate, opts);
  return queries::FalsePositiveRate(result.selected, truth);
}

double RunAggCalls(eval::Workbench* bench, const core::TastiIndex& index,
                   const core::Scorer& scorer, labeler::CachingLabeler* cache,
                   uint64_t seed) {
  const auto proxy = core::ComputeProxyScores(index, scorer);
  queries::AggregationOptions opts;
  opts.error_target = bench::AggErrorTargetFor(bench->id());
  opts.seed = seed;
  return static_cast<double>(
      queries::EstimateMean(proxy, cache, scorer, opts).labeler_invocations);
}

}  // namespace

int main() {
  eval::PrintBanner(
      "Table 3: cracking — query 2 performance before vs after folding "
      "query 1's labels into the index");
  eval::PrintPaperReference(
      "night-street: agg->SUPG FPR 8.6% -> 4.9%; SUPG->agg calls 21.2k -> "
      "18.9k (improves in all settings)");

  eval::ExperimentConfig config = eval::ExperimentConfig::FromEnv();
  TablePrinter table(
      {"dataset", "1st query", "2nd query", "before crack", "after crack"});

  for (data::DatasetId id :
       {data::DatasetId::kNightStreet, data::DatasetId::kTaipei}) {
    eval::Workbench bench(id, config);
    core::CountScorer agg(data::ObjectClass::kCar);
    core::AtLeastCountScorer sel(data::ObjectClass::kCar, 2);

    // agg -> SUPG: measure the SUPG query before and after cracking with
    // the aggregation query's labels.
    {
      core::TastiIndex index = BuildIndex(&bench);
      labeler::SimulatedLabeler oracle(&bench.dataset());
      labeler::CachingLabeler probe(&oracle);
      const double before = RunSupgFpr(&bench, index, sel, &probe, 121);

      labeler::SimulatedLabeler oracle1(&bench.dataset());
      labeler::CachingLabeler first(&oracle1);
      RunAggCalls(&bench, index, agg, &first, 122);
      index.CrackFrom(first);

      labeler::SimulatedLabeler oracle2(&bench.dataset());
      labeler::CachingLabeler probe2(&oracle2);
      const double after = RunSupgFpr(&bench, index, sel, &probe2, 121);
      table.AddRow({bench.dataset().name, "Agg.", "SUPG", FmtPercent(before),
                    FmtPercent(after)});
    }

    // SUPG -> agg: measure the aggregation query before and after
    // cracking with the SUPG query's labels.
    {
      core::TastiIndex index = BuildIndex(&bench);
      labeler::SimulatedLabeler oracle(&bench.dataset());
      labeler::CachingLabeler probe(&oracle);
      const double before = RunAggCalls(&bench, index, agg, &probe, 123);

      labeler::SimulatedLabeler oracle1(&bench.dataset());
      labeler::CachingLabeler first(&oracle1);
      RunSupgFpr(&bench, index, sel, &first, 124);
      index.CrackFrom(first);

      labeler::SimulatedLabeler oracle2(&bench.dataset());
      labeler::CachingLabeler probe2(&oracle2);
      const double after = RunAggCalls(&bench, index, agg, &probe2, 123);
      table.AddRow({bench.dataset().name, "SUPG", "Agg.",
                    FmtCount(static_cast<long long>(before)),
                    FmtCount(static_cast<long long>(after))});
    }
  }
  eval::PrintTable(table);
  eval::PrintTakeaway("cracking improves the second query in every setting");
  return 0;
}
