// Table 2: queries without statistical guarantees on night-street —
// direct aggregation from proxy scores (percent error) and threshold
// selection (100 - F1).
//
// Paper result: TASTI 3.3% error vs BlazeIt 4.4% (aggregation);
// TASTI 5.5 vs NoScope 14.9 (100 - F1, selection).

#include <cstdio>

#include "bench_common.h"
#include "core/proxy.h"
#include "eval/experiment.h"
#include "eval/reporting.h"
#include "queries/noguarantee.h"
#include "util/stats.h"
#include "util/table.h"

using namespace tasti;

int main() {
  eval::PrintBanner(
      "Table 2: queries without statistical guarantees, night-street "
      "(lower is better)");
  eval::PrintPaperReference(
      "agg %err: TASTI 3.3 vs BlazeIt 4.4; selection 100-F1: TASTI 5.5 vs "
      "NoScope 14.9");

  eval::ExperimentConfig config = eval::ExperimentConfig::FromEnv();
  eval::Workbench bench(data::DatasetId::kNightStreet, config);

  TablePrinter table({"method", "query", "quality metric", "value"});

  // Aggregation: direct estimate from the proxy scores.
  core::CountScorer agg(data::ObjectClass::kCar);
  const double truth = Mean(core::ExactScores(bench.dataset(), agg));
  const double tasti_est = queries::DirectAggregate(bench.TastiScores(agg, true));
  const double blazeit_est =
      queries::DirectAggregate(bench.PerQueryProxy(agg, 111).scores);
  table.AddRow({"TASTI", "Agg.", "percent error",
                FmtPercent(queries::PercentError(tasti_est, truth))});
  table.AddRow({"BlazeIt (per-query)", "Agg.", "percent error",
                FmtPercent(queries::PercentError(blazeit_est, truth))});

  // Selection: threshold fitted on a labeled validation sample, using the
  // standard (multi-car) selection predicate of the night-street suite.
  core::AtLeastCountScorer sel(data::ObjectClass::kCar, 2);
  const std::vector<double> sel_truth = core::ExactScores(bench.dataset(), sel);
  auto run_selection = [&](const std::vector<double>& proxy, uint64_t seed) {
    return bench::MeanOverTrials(
        [&](uint64_t trial_seed) {
          auto oracle = bench.MakeOracle();
          queries::ThresholdSelectOptions opts;
          opts.validation_budget = 300;
          opts.seed = trial_seed;
          queries::ThresholdSelectResult result =
              queries::ThresholdSelect(proxy, oracle.get(), sel, opts);
          return 100.0 * (1.0 - queries::F1Score(result.selected, sel_truth));
        },
        seed);
  };
  table.AddRow({"TASTI", "Selection", "100 - F1",
                Fmt(run_selection(bench.TastiScores(sel, true), 112), 1)});
  table.AddRow(
      {"NoScope (per-query)", "Selection", "100 - F1",
       Fmt(run_selection(bench.PerQueryProxy(sel, 113).scores, 114), 1)});

  eval::PrintTable(table);
  eval::PrintTakeaway("TASTI's proxy scores are higher quality on both query "
                      "types, as in the paper");
  return 0;
}
