// Figure 8: aggregation of the average x-position of objects (a pure
// regression query), night-street and taipei.
//
// Paper result: BlazeIt's proxy models could not be trained for pure
// regression at all (they did not beat random sampling), while TASTI
// produces position proxies for free from the same index: No proxy 39.7k
// vs TASTI-PT 31.6k vs TASTI-T 14.9k (night-street).

#include <cstdio>

#include "bench_common.h"
#include "baselines/uniform.h"
#include "core/proxy.h"
#include "core/scorer.h"
#include "eval/experiment.h"
#include "eval/reporting.h"
#include "util/table.h"

using namespace tasti;

int main() {
  eval::PrintBanner(
      "Figure 8: aggregation of mean object x-position, labeler invocations");
  eval::PrintPaperReference(
      "night-street: No proxy 39.7k | TASTI-PT 31.6k | TASTI-T 14.9k "
      "(per-query proxies could not be trained for regression)");

  eval::ExperimentConfig config = eval::ExperimentConfig::FromEnv();
  TablePrinter table({"panel", "No proxy", "TASTI-PT", "TASTI-T"});
  const double target = 0.02;  // mean position lies in [0, 1]

  for (data::DatasetId id :
       {data::DatasetId::kNightStreet, data::DatasetId::kTaipei}) {
    eval::Workbench bench(id, config);
    core::MeanXScorer scorer(data::ObjectClass::kCar);

    const double no_proxy = bench::MeanOverTrials([&](uint64_t seed) {
      auto oracle = bench.MakeOracle();
      queries::AggregationOptions opts;
      opts.error_target = target;
      opts.seed = seed;
      return static_cast<double>(
          baselines::UniformAggregate(oracle.get(), scorer, opts)
              .labeler_invocations);
    });
    const double pt = bench::MeanAggInvocations(
        &bench, bench.TastiScores(scorer, false), scorer, target, 71);
    const double t = bench::MeanAggInvocations(
        &bench, bench.TastiScores(scorer, true), scorer, target, 72);

    table.AddRow({data::DatasetName(id),
                  FmtCount(static_cast<long long>(no_proxy)),
                  FmtCount(static_cast<long long>(pt)),
                  FmtCount(static_cast<long long>(t))});
  }
  eval::PrintTable(table);
  eval::PrintTakeaway(
      "TASTI answers the regression query without custom proxy training, "
      "up to 3x cheaper than random sampling");
  return 0;
}
