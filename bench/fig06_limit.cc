// Figure 6: target labeler invocations for limit queries (find K records
// matching a rare predicate), across six panels and three methods.
//
// Paper result: TASTI improves limit queries by up to 24x (night-street:
// per-query 5,055 vs TASTI-T 473; amsterdam 16,056 vs 11). FPF mining and
// FPF clustering are what make rare events findable.

#include <cstdio>

#include "bench_common.h"
#include "core/proxy.h"
#include "eval/experiment.h"
#include "eval/reporting.h"
#include "queries/limit.h"
#include "util/table.h"

using namespace tasti;

int main() {
  eval::PrintBanner(
      "Figure 6: limit queries, labeler invocations to find K matches "
      "(lower is better)");
  eval::PrintPaperReference(
      "night-street: Per-query 5,055 | TASTI-PT 700 | TASTI-T 473; up to "
      "24x over per-query proxies (34x on amsterdam)");

  eval::ExperimentConfig config = eval::ExperimentConfig::FromEnv();
  TablePrinter table({"panel", "predicate", "matches", "Per-query proxy",
                      "TASTI-PT", "TASTI-T"});

  for (data::DatasetId id : data::AllDatasetIds()) {
    eval::Workbench bench(id, config);
    for (const eval::QuerySpec& spec : eval::DefaultQuerySpecs(id)) {
      const core::Scorer& predicate = *spec.limit_predicate;
      const std::vector<double> truth =
          core::ExactScores(bench.dataset(), predicate);
      size_t matches = 0;
      for (double v : truth) {
        if (v >= 0.5) ++matches;
      }
      if (matches < spec.limit_want) {
        table.AddRow({spec.label, predicate.Name(),
                      FmtCount(static_cast<long long>(matches)), "n/a", "n/a",
                      "n/a"});
        continue;
      }

      queries::LimitOptions opts;
      opts.want = spec.limit_want;
      auto run = [&](const std::vector<double>& scores) {
        auto oracle = bench.MakeOracle();
        return queries::LimitQuery(scores, oracle.get(), predicate, opts)
            .labeler_invocations;
      };
      const size_t pq = run(bench.PerQueryProxy(predicate, 41).scores);
      const size_t pt = run(
          bench.TastiScores(predicate, false, core::PropagationMode::kLimit));
      const size_t t = run(
          bench.TastiScores(predicate, true, core::PropagationMode::kLimit));

      table.AddRow({spec.label, predicate.Name(),
                    FmtCount(static_cast<long long>(matches)),
                    FmtCount(static_cast<long long>(pq)),
                    FmtCount(static_cast<long long>(pt)),
                    FmtCount(static_cast<long long>(t))});
    }
  }
  eval::PrintTable(table);
  eval::PrintTakeaway(
      "TASTI-T examines the fewest records on every panel with enough rare "
      "events; FPF clustering places representatives on the rare tail");
  return 0;
}
