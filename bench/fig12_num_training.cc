// Figure 12: sensitivity to the number of triplet-training examples,
// night-street, aggregation + limit queries.
//
// Paper result: TASTI is insensitive to the training budget across
// 1,000-5,000 examples and beats the per-query baseline everywhere.

#include <cstdio>

#include "bench_common.h"
#include "core/index.h"
#include "core/proxy.h"
#include "core/scorer.h"
#include "eval/experiment.h"
#include "eval/reporting.h"
#include "labeler/labeler.h"
#include "queries/limit.h"
#include "util/table.h"

using namespace tasti;

int main() {
  eval::PrintBanner(
      "Figure 12: number of training examples vs performance, night-street");
  eval::PrintPaperReference(
      "performance is stable across 1k-5k training examples; TASTI beats "
      "baselines throughout");

  eval::ExperimentConfig config = eval::ExperimentConfig::FromEnv();
  eval::Workbench bench(data::DatasetId::kNightStreet, config);
  const double target = bench::AggErrorTargetFor(bench.id());

  core::CountScorer agg_scorer(data::ObjectClass::kCar);
  core::AtLeastCountScorer limit_predicate(data::ObjectClass::kCar, 6);
  queries::LimitOptions limit_opts;
  limit_opts.want = 10;

  TablePrinter table(
      {"method", "training examples", "aggregation calls", "limit calls"});

  {
    const auto pq_agg = bench.PerQueryProxy(agg_scorer, 93);
    const double agg = bench::MeanAggInvocations(&bench, pq_agg.scores,
                                                 agg_scorer, target, 930);
    const auto pq_limit = bench.PerQueryProxy(limit_predicate, 94);
    auto oracle = bench.MakeOracle();
    const size_t limit =
        queries::LimitQuery(pq_limit.scores, oracle.get(), limit_predicate,
                            limit_opts)
            .labeler_invocations;
    table.AddRow({"Per-query proxy", "-", FmtCount(static_cast<long long>(agg)),
                  FmtCount(static_cast<long long>(limit))});
  }

  for (size_t training : {750, 1000, 1250, 1500, 2000}) {
    // Two independent index builds per row: limit-query cost at one seed
    // depends on whether this build's representatives covered the tail.
    double agg_total = 0.0, limit_total = 0.0;
    const int index_seeds = 2;
    for (int trial = 0; trial < index_seeds; ++trial) {
      core::IndexOptions opts = bench.BaseIndexOptions();
      opts.num_training_records = training;
      opts.seed += static_cast<uint64_t>(trial) * 977;
      labeler::SimulatedLabeler oracle(&bench.dataset());
      labeler::CachingLabeler cache(&oracle);
      core::TastiIndex index =
          core::TastiIndex::Build(bench.dataset(), &cache, opts);

      const auto agg_proxy = core::ComputeProxyScores(index, agg_scorer);
      agg_total += bench::MeanAggInvocations(&bench, agg_proxy, agg_scorer,
                                             target, 940 + training + trial);
      const auto limit_proxy = core::ComputeProxyScores(
          index, limit_predicate, core::PropagationMode::kLimit);
      auto limit_oracle = bench.MakeOracle();
      limit_total += static_cast<double>(
          queries::LimitQuery(limit_proxy, limit_oracle.get(), limit_predicate,
                              limit_opts)
              .labeler_invocations);
    }
    table.AddRow({"TASTI-T", FmtCount(static_cast<long long>(training)),
                  FmtCount(static_cast<long long>(agg_total / index_seeds)),
                  FmtCount(static_cast<long long>(limit_total / index_seeds))});
  }
  eval::PrintTable(table);
  eval::PrintTakeaway("TASTI is not sensitive to the training budget");
  return 0;
}
