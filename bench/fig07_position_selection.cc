// Figure 7: SUPG selection of objects on the left-hand side of the frame
// (a position predicate), night-street and taipei.
//
// Paper result: the sharp positional discontinuity breaks per-query proxy
// models (FPR 80.9% / 93.4%) while TASTI handles it (35.1%/19.7% and
// 88.3%/71.0%) even though the query violates the Lipschitz assumption of
// the analysis.

#include <cstdio>

#include "bench_common.h"
#include "core/proxy.h"
#include "core/scorer.h"
#include "eval/experiment.h"
#include "eval/reporting.h"
#include "queries/supg.h"
#include "util/table.h"

using namespace tasti;

int main() {
  eval::PrintBanner(
      "Figure 7: SUPG selection by object position (left half of frame), FPR");
  eval::PrintPaperReference(
      "night-street: Per-query 80.9% | TASTI-PT 35.1% | TASTI-T 19.7%; "
      "taipei: 93.4% | 88.3% | 71.0%");

  eval::ExperimentConfig config = eval::ExperimentConfig::FromEnv();
  TablePrinter table({"panel", "Per-query proxy", "TASTI-PT", "TASTI-T"});

  for (data::DatasetId id :
       {data::DatasetId::kNightStreet, data::DatasetId::kTaipei}) {
    eval::Workbench bench(id, config);
    core::LeftPresenceScorer predicate(data::ObjectClass::kCar);
    const std::vector<double> truth =
        core::ExactScores(bench.dataset(), predicate);
    const size_t budget = bench.dataset().size() / 40;

    auto mean_fpr = [&](const std::vector<double>& proxy, uint64_t base_seed) {
      return bench::MeanOverTrials(
          [&](uint64_t seed) {
            auto oracle = bench.MakeOracle();
            queries::SupgOptions opts;
            opts.budget = budget;
            opts.seed = seed;
            queries::SupgResult result = queries::SupgRecallSelect(
                proxy, oracle.get(), predicate, opts);
            return queries::FalsePositiveRate(result.selected, truth);
          },
          base_seed);
    };

    const double pq = mean_fpr(bench.PerQueryProxy(predicate, 51).scores, 61);
    const double pt = mean_fpr(bench.TastiScores(predicate, false), 62);
    const double t = mean_fpr(bench.TastiScores(predicate, true), 63);
    table.AddRow({data::DatasetName(id), FmtPercent(pq), FmtPercent(pt),
                  FmtPercent(t)});
  }
  eval::PrintTable(table);
  eval::PrintTakeaway(
      "TASTI-T has the lowest FPR on the position predicate despite the "
      "Lipschitz violation, as in the paper");
  return 0;
}
