#ifndef TASTI_BENCH_ABLATION_COMMON_H_
#define TASTI_BENCH_ABLATION_COMMON_H_

/// \file ablation_common.h
/// Shared runner for the factor analysis (Figure 9) and lesion study
/// (Figure 10): builds a night-street index under a given combination of
/// ablation switches and measures aggregation and limit performance.

#include <string>
#include <vector>

#include "bench_common.h"
#include "core/index.h"
#include "core/proxy.h"
#include "core/scorer.h"
#include "eval/experiment.h"
#include "labeler/labeler.h"
#include "queries/limit.h"

namespace tasti::bench {

/// One ablation configuration.
struct AblationConfig {
  std::string label;
  bool triplet = true;
  bool fpf_mining = true;
  bool fpf_cluster = true;
};

/// Aggregation + limit cost under one configuration.
struct AblationResult {
  double agg_invocations = 0.0;
  double limit_invocations = 0.0;
};

inline AblationResult RunAblation(eval::Workbench* bench,
                                  const AblationConfig& config) {
  core::IndexOptions opts = bench->BaseIndexOptions();
  // Lean index for the ablations: at the default representative density
  // (10% of records) even random clustering blankets the rare tail, hiding
  // the FPF effect; 3% approaches the paper's rep-to-record ratio where
  // clustering policy decides whether rare events are covered at all.
  opts.num_representatives = opts.num_representatives / 3;
  opts.use_triplet_training = config.triplet;
  opts.use_fpf_mining = config.fpf_mining;
  opts.rep_selection = config.fpf_cluster ? core::RepSelectionPolicy::kFpfMixed
                                          : core::RepSelectionPolicy::kRandom;
  labeler::SimulatedLabeler oracle(&bench->dataset());
  labeler::CachingLabeler cache(&oracle);
  core::TastiIndex index = core::TastiIndex::Build(bench->dataset(), &cache, opts);

  AblationResult result;
  core::CountScorer agg_scorer(data::ObjectClass::kCar);
  const std::vector<double> agg_proxy = core::ComputeProxyScores(index, agg_scorer);
  result.agg_invocations =
      MeanAggInvocations(bench, agg_proxy, agg_scorer,
                         AggErrorTargetFor(bench->id()), 810);

  core::AtLeastCountScorer limit_predicate(data::ObjectClass::kCar, 6);
  const std::vector<double> limit_proxy = core::ComputeProxyScores(
      index, limit_predicate, core::PropagationMode::kLimit);
  auto limit_oracle = bench->MakeOracle();
  queries::LimitOptions limit_opts;
  limit_opts.want = 10;
  result.limit_invocations = static_cast<double>(
      queries::LimitQuery(limit_proxy, limit_oracle.get(), limit_predicate,
                          limit_opts)
          .labeler_invocations);
  return result;
}

}  // namespace tasti::bench

#endif  // TASTI_BENCH_ABLATION_COMMON_H_
