// Figure 3: index construction cost vs aggregation query performance on
// night-street.
//
// BlazeIt's frontier: larger TMAS -> better per-query proxy -> fewer
// query-time labeler invocations. TASTI's frontier: more representatives
// -> better propagated scores. Paper result: TASTI matches or beats
// BlazeIt's query performance with up to 10x cheaper construction.

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "baselines/per_query_proxy.h"
#include "core/index.h"
#include "core/proxy.h"
#include "eval/experiment.h"
#include "eval/reporting.h"
#include "labeler/cost_model.h"
#include "labeler/labeler.h"
#include "util/table.h"

using namespace tasti;

int main() {
  eval::PrintBanner(
      "Figure 3: construction cost vs aggregation performance, night-street");
  eval::PrintPaperReference(
      "TASTI matches/beats BlazeIt query performance at up to 10x lower "
      "construction cost");

  eval::ExperimentConfig config = eval::ExperimentConfig::FromEnv();
  eval::Workbench bench(data::DatasetId::kNightStreet, config);
  const double error_target = bench::AggErrorTargetFor(bench.id());
  core::CountScorer scorer(data::ObjectClass::kCar);
  labeler::CostModel cost;

  TablePrinter table({"system", "construction labels", "construction s",
                      "query labeler calls"});

  // BlazeIt frontier: per-query proxies trained on growing TMAS sizes.
  for (size_t tmas : {1000, 2000, 4000, 8000, 16000}) {
    labeler::SimulatedLabeler oracle(&bench.dataset());
    baselines::ProxyTrainOptions proxy_opts;
    proxy_opts.num_training_records = tmas;
    proxy_opts.seed = 99 + tmas;
    baselines::PerQueryProxyResult proxy = baselines::TrainPerQueryProxy(
        bench.dataset().features, &oracle, scorer, proxy_opts);
    const double invocations = bench::MeanAggInvocations(
        &bench, proxy.scores, scorer, error_target, 2000 + tmas);
    table.AddRow({"BlazeIt", FmtCount(static_cast<long long>(tmas)),
                  Fmt(tmas * cost.mask_rcnn_seconds_per_label, 0),
                  FmtCount(static_cast<long long>(invocations))});
  }

  // TASTI frontier: growing representative counts (one trained embedding).
  for (size_t reps : {250, 500, 1000, 2000, 4000}) {
    core::IndexOptions opts = bench.BaseIndexOptions();
    opts.num_representatives = reps;
    labeler::SimulatedLabeler oracle(&bench.dataset());
    labeler::CachingLabeler cache(&oracle);
    core::TastiIndex index = core::TastiIndex::Build(bench.dataset(), &cache, opts);
    const std::vector<double> proxy = core::ComputeProxyScores(index, scorer);
    const double invocations = bench::MeanAggInvocations(
        &bench, proxy, scorer, error_target, 3000 + reps);
    const size_t labels = oracle.invocations();
    table.AddRow({"TASTI-T", FmtCount(static_cast<long long>(labels)),
                  Fmt(labels * cost.mask_rcnn_seconds_per_label +
                          index.build_stats().TotalSeconds(),
                      0),
                  FmtCount(static_cast<long long>(invocations))});
  }
  eval::PrintTable(table);
  eval::PrintTakeaway(
      "TASTI rows reach BlazeIt's best query performance with a fraction of "
      "the construction labels");
  return 0;
}
