// Figure 13: sensitivity to the embedding dimensionality, night-street,
// aggregation + limit queries.
//
// Paper result: TASTI beats per-query proxies across embedding sizes
// 32-512; size is not a sensitive hyperparameter.

#include <cstdio>

#include "bench_common.h"
#include "core/index.h"
#include "core/proxy.h"
#include "core/scorer.h"
#include "eval/experiment.h"
#include "eval/reporting.h"
#include "labeler/labeler.h"
#include "queries/limit.h"
#include "util/table.h"

using namespace tasti;

int main() {
  eval::PrintBanner(
      "Figure 13: embedding dimensionality vs performance, night-street");
  eval::PrintPaperReference(
      "TASTI beats per-query proxies across embedding sizes 32-512");

  eval::ExperimentConfig config = eval::ExperimentConfig::FromEnv();
  eval::Workbench bench(data::DatasetId::kNightStreet, config);
  const double target = bench::AggErrorTargetFor(bench.id());

  core::CountScorer agg_scorer(data::ObjectClass::kCar);
  core::AtLeastCountScorer limit_predicate(data::ObjectClass::kCar, 6);
  queries::LimitOptions limit_opts;
  limit_opts.want = 10;

  TablePrinter table(
      {"method", "embedding dim", "aggregation calls", "limit calls"});

  {
    const auto pq_agg = bench.PerQueryProxy(agg_scorer, 95);
    const double agg = bench::MeanAggInvocations(&bench, pq_agg.scores,
                                                 agg_scorer, target, 950);
    const auto pq_limit = bench.PerQueryProxy(limit_predicate, 96);
    auto oracle = bench.MakeOracle();
    const size_t limit =
        queries::LimitQuery(pq_limit.scores, oracle.get(), limit_predicate,
                            limit_opts)
            .labeler_invocations;
    table.AddRow({"Per-query proxy", "-", FmtCount(static_cast<long long>(agg)),
                  FmtCount(static_cast<long long>(limit))});
  }

  for (size_t dim : {16, 32, 64, 128, 256}) {
    core::IndexOptions opts = bench.BaseIndexOptions();
    opts.embedding_dim = dim;
    labeler::SimulatedLabeler oracle(&bench.dataset());
    labeler::CachingLabeler cache(&oracle);
    core::TastiIndex index =
        core::TastiIndex::Build(bench.dataset(), &cache, opts);

    const auto agg_proxy = core::ComputeProxyScores(index, agg_scorer);
    const double agg = bench::MeanAggInvocations(&bench, agg_proxy, agg_scorer,
                                                 target, 960 + dim);
    const auto limit_proxy = core::ComputeProxyScores(
        index, limit_predicate, core::PropagationMode::kLimit);
    auto limit_oracle = bench.MakeOracle();
    const size_t limit =
        queries::LimitQuery(limit_proxy, limit_oracle.get(), limit_predicate,
                            limit_opts)
            .labeler_invocations;
    table.AddRow({"TASTI-T", FmtCount(static_cast<long long>(dim)),
                  FmtCount(static_cast<long long>(agg)),
                  FmtCount(static_cast<long long>(limit))});
  }
  eval::PrintTable(table);
  eval::PrintTakeaway("embedding size is not a sensitive hyperparameter");
  return 0;
}
