// Microbenchmarks (google-benchmark) for the kernels that dominate index
// construction and query processing: FPF selection, top-k distances,
// score propagation, embedding inference, and the triplet loss.

#include <benchmark/benchmark.h>

#include <cmath>
#include <limits>

#include "cluster/fpf.h"
#include "cluster/ivf.h"
#include "cluster/kmeans.h"
#include "cluster/topk.h"
#include "core/index.h"
#include "core/propagation.h"
#include "core/scorer.h"
#include "data/dataset.h"
#include "kernel_baselines.h"
#include "labeler/labeler.h"
#include "nn/kernels.h"
#include "nn/mlp.h"
#include "nn/triplet.h"
#include "util/random.h"

namespace tasti {
namespace {

nn::Matrix RandomPoints(size_t n, size_t dim, uint64_t seed) {
  Rng rng(seed);
  nn::Matrix m(n, dim);
  for (size_t i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<float>(rng.Normal());
  }
  return m;
}

void BM_Fpf(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const size_t k = static_cast<size_t>(state.range(1));
  nn::Matrix points = RandomPoints(n, 64, 1);
  for (auto _ : state) {
    cluster::FpfResult result = cluster::FurthestPointFirst(points, k);
    benchmark::DoNotOptimize(result.centers.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n * k));
}
BENCHMARK(BM_Fpf)->Args({10000, 100})->Args({10000, 500})->Args({50000, 100});

void BM_TopK(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const size_t reps = static_cast<size_t>(state.range(1));
  nn::Matrix points = RandomPoints(n, 64, 2);
  nn::Matrix rep_points = RandomPoints(reps, 64, 3);
  for (auto _ : state) {
    cluster::TopKDistances topk = cluster::ComputeTopK(points, rep_points, 5);
    benchmark::DoNotOptimize(topk.distances.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n * reps));
}
BENCHMARK(BM_TopK)->Args({10000, 500})->Args({10000, 2000})->Args({50000, 500});

// Before/after pairs for the blocked distance kernels: the *Scalar rows
// time the pre-kernel one-pair-at-a-time loops (bench/kernel_baselines.h),
// the matching rows above/below time the shipped batched implementations.

void BM_TopKScalar(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const size_t reps = static_cast<size_t>(state.range(1));
  nn::Matrix points = RandomPoints(n, 64, 2);
  nn::Matrix rep_points = RandomPoints(reps, 64, 3);
  for (auto _ : state) {
    cluster::TopKDistances topk =
        bench::ComputeTopKScalar(points, rep_points, 5);
    benchmark::DoNotOptimize(topk.distances.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n * reps));
}
BENCHMARK(BM_TopKScalar)->Args({10000, 500})->Args({10000, 2000});

void BM_FpfRelax(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  nn::Matrix points = RandomPoints(n, 64, 1);
  // Mirrors the shipped relax pass (cluster::FurthestPointFirst): points
  // packed once per FPF call (amortized over all k passes, so outside the
  // timed loop), squared distances throughout, sqrt hoisted out.
  const std::vector<nn::PackedBlock> blocks = nn::PackBlocks(points);
  std::vector<float> min_d2(n, std::numeric_limits<float>::max());
  std::vector<float> d2(nn::kDistanceBlockRows);
  size_t center = 0;
  for (auto _ : state) {
    const float cnorm = nn::RowSquaredNorm(points, center);
    float best = -1.0f;
    size_t arg = 0;
    for (const nn::PackedBlock& block : blocks) {
      nn::SquaredDistanceBatch(points, center, cnorm, block, d2.data());
      const size_t base = block.row_begin();
      for (size_t j = 0; j < block.rows(); ++j) {
        const size_t i = base + j;
        if (d2[j] < min_d2[i]) min_d2[i] = d2[j];
        if (min_d2[i] > best) {
          best = min_d2[i];
          arg = i;
        }
      }
    }
    center = arg;
    benchmark::DoNotOptimize(min_d2.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
// 6000 points x 64 dims is L2-resident (1.5 MiB packed) and shows the
// kernel's compute-bound speedup; the larger shapes run into the
// single-core L3 bandwidth ceiling (the relax streams 64 * 4 bytes per
// point per pass) and the gain compresses toward ~2.5-3x.
BENCHMARK(BM_FpfRelax)->Arg(6000)->Arg(10000)->Arg(50000);

void BM_FpfRelaxScalar(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  nn::Matrix points = RandomPoints(n, 64, 1);
  std::vector<float> min_distance(n, std::numeric_limits<float>::max());
  size_t center = 0;
  for (auto _ : state) {
    center = bench::FpfRelaxScalar(points, center, &min_distance);
    benchmark::DoNotOptimize(min_distance.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_FpfRelaxScalar)->Arg(6000)->Arg(10000)->Arg(50000);

void BM_KMeans(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const size_t k = static_cast<size_t>(state.range(1));
  nn::Matrix points = RandomPoints(n, 64, 14);
  for (auto _ : state) {
    cluster::KMeansOptions opts;
    opts.num_clusters = k;
    opts.max_iterations = 10;
    cluster::KMeansResult result = cluster::KMeans(points, opts);
    benchmark::DoNotOptimize(result.assignment.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n * k));
}
BENCHMARK(BM_KMeans)->Args({10000, 50})->Args({10000, 200});

void BM_IvfSearchAll(benchmark::State& state) {
  const size_t reps = static_cast<size_t>(state.range(0));
  const size_t probes = static_cast<size_t>(state.range(1));
  nn::Matrix rep_points = RandomPoints(reps, 64, 15);
  nn::Matrix queries = RandomPoints(10000, 64, 16);
  cluster::IvfOptions opts;
  opts.num_probes = probes;
  cluster::IvfIndex ivf(rep_points, opts);
  for (auto _ : state) {
    cluster::TopKDistances topk = ivf.SearchAll(queries, 5);
    benchmark::DoNotOptimize(topk.distances.data());
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
// Compare against BM_TopK/10000/2000 (the exact path).
BENCHMARK(BM_IvfSearchAll)->Args({2000, 4})->Args({2000, 8});

void BM_CrackUpdate(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  nn::Matrix points = RandomPoints(n, 64, 4);
  nn::Matrix reps = RandomPoints(512, 64, 5);
  cluster::TopKDistances topk = cluster::ComputeTopK(points, reps, 5);
  for (auto _ : state) {
    cluster::TopKDistances copy = topk;
    cluster::UpdateTopKWithNewRep(points, reps, 0, 511, &copy);
    benchmark::DoNotOptimize(copy.distances.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_CrackUpdate)->Arg(10000)->Arg(100000);

// One small prebuilt index shared by the propagation benchmarks.
struct PropagationFixture {
  data::Dataset dataset;
  core::TastiIndex index;
  std::vector<double> rep_scores;

  PropagationFixture() {
    data::DatasetOptions ds_opts;
    ds_opts.num_records = 20000;
    dataset = data::MakeNightStreet(ds_opts);
    core::IndexOptions opts;
    opts.num_training_records = 200;
    opts.num_representatives = 1000;
    opts.embedding_dim = 32;
    opts.epochs = 5;
    labeler::SimulatedLabeler oracle(&dataset);
    labeler::CachingLabeler cache(&oracle);
    index = core::TastiIndex::Build(dataset, &cache, opts);
    core::CountScorer scorer(data::ObjectClass::kCar);
    rep_scores = core::RepresentativeScores(index, scorer);
  }

  static PropagationFixture& Get() {
    static PropagationFixture fixture;
    return fixture;
  }
};

void BM_PropagateNumeric(benchmark::State& state) {
  auto& fixture = PropagationFixture::Get();
  for (auto _ : state) {
    auto scores = core::PropagateNumeric(fixture.index, fixture.rep_scores);
    benchmark::DoNotOptimize(scores.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(fixture.index.num_records()));
}
BENCHMARK(BM_PropagateNumeric);

void BM_PropagateCategorical(benchmark::State& state) {
  auto& fixture = PropagationFixture::Get();
  for (auto _ : state) {
    auto scores = core::PropagateCategorical(fixture.index, fixture.rep_scores);
    benchmark::DoNotOptimize(scores.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(fixture.index.num_records()));
}
BENCHMARK(BM_PropagateCategorical);

void BM_MlpInference(benchmark::State& state) {
  const size_t batch = static_cast<size_t>(state.range(0));
  Rng rng(7);
  nn::Mlp net = nn::Mlp::MakeEmbeddingNet(64, 128, 64, &rng);
  nn::Matrix input = RandomPoints(batch, 64, 8);
  for (auto _ : state) {
    nn::Matrix out = net.Infer(input);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(batch));
}
BENCHMARK(BM_MlpInference)->Arg(64)->Arg(1024)->Arg(16384);

void BM_TripletLoss(benchmark::State& state) {
  const size_t batch = static_cast<size_t>(state.range(0));
  nn::Matrix a = RandomPoints(batch, 64, 9);
  nn::Matrix p = RandomPoints(batch, 64, 10);
  nn::Matrix n = RandomPoints(batch, 64, 11);
  for (auto _ : state) {
    nn::TripletLossResult result = nn::TripletLoss(a, p, n, 0.3f);
    benchmark::DoNotOptimize(result.grad_anchor.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(batch));
}
BENCHMARK(BM_TripletLoss)->Arg(64)->Arg(1024);

void BM_Gemm(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  nn::Matrix a = RandomPoints(n, 64, 12);
  nn::Matrix b = RandomPoints(64, 128, 13);
  nn::Matrix c;
  for (auto _ : state) {
    nn::Gemm(a, b, &c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(n * 64 * 128));
}
BENCHMARK(BM_Gemm)->Arg(256)->Arg(4096);

void BM_GemmBTBlocked(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  nn::Matrix a = RandomPoints(n, 64, 12);
  nn::Matrix b = RandomPoints(512, 64, 13);
  nn::Matrix c;
  for (auto _ : state) {
    nn::GemmBTBlocked(a, b, &c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(n * 64 * 512));
}
BENCHMARK(BM_GemmBTBlocked)->Arg(256)->Arg(4096);

void BM_GemmBTScalar(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  nn::Matrix a = RandomPoints(n, 64, 12);
  nn::Matrix b = RandomPoints(512, 64, 13);
  nn::Matrix c;
  for (auto _ : state) {
    bench::GemmBTScalar(a, b, &c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(n * 64 * 512));
}
BENCHMARK(BM_GemmBTScalar)->Arg(256)->Arg(4096);

}  // namespace
}  // namespace tasti
