// Emits BENCH_propagation.json: {kernel, n, d, ns_per_op} rows for the
// incremental propagation engine and the serving score cache, in the same
// scalar/blocked pairing bench_compare.py gates (scalar = the pre-cache
// full-recompute path, blocked = the cached/incremental path):
//
//   repeated_scorer_scalar   16 queries of one scorer, full proxy
//                            computation each time
//   repeated_scorer_blocked  the same 16 queries through a fresh
//                            ScoreCache (1 full compute + 15 hits)
//   crack_requery_scalar     re-query after a 32-rep crack via a full
//                            recompute of the new epoch
//   crack_requery_blocked    the same re-query by copying the parent
//                            epoch's PropagationState and advancing it
//                            through the snapshot's dirty-row delta
//
// Speedups are ratios of two timings on one machine, so the committed
// baseline (bench/baselines/BENCH_propagation.json) transfers across
// hosts; the CI gate compares ratios, not absolute ns_per_op.
//
//   bench_serve_propagation [output.json]  (default: BENCH_propagation.json)

#include <algorithm>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "core/index.h"
#include "core/propagation.h"
#include "core/proxy.h"
#include "core/scorer.h"
#include "data/dataset.h"
#include "eval/reporting.h"
#include "labeler/labeler.h"
#include "serve/score_cache.h"
#include "serve/snapshot.h"
#include "util/timer.h"

namespace tasti {
namespace {

/// Times fn for at least 50ms per repetition, returns median ns per call.
double MedianNsPerOp(const std::function<void()>& fn) {
  fn();  // warm-up
  std::vector<double> samples;
  for (int rep = 0; rep < 5; ++rep) {
    WallTimer timer;
    size_t calls = 0;
    double elapsed = 0.0;
    do {
      fn();
      ++calls;
      elapsed = timer.Seconds();
    } while (elapsed < 0.05);
    samples.push_back(elapsed * 1e9 / static_cast<double>(calls));
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

struct Row {
  std::string kernel;
  size_t n;
  size_t d;
  double ns_per_op;
};

}  // namespace
}  // namespace tasti

int main(int argc, char** argv) {
  using namespace tasti;
  const char* out_path = argc > 1 ? argv[1] : "BENCH_propagation.json";

  // A serving-scale index: enough records that propagation dominates, a
  // rep count large enough that a 32-rep crack dirties a modest fraction
  // of the rows (the regime the incremental path is built for). Pretrained
  // embeddings skip triplet training — it has no bearing on propagation.
  const size_t kRecords = 20000;
  data::DatasetOptions ds_opts;
  ds_opts.num_records = kRecords;
  ds_opts.seed = 7;
  data::Dataset ds = data::MakeNightStreet(ds_opts);

  core::IndexOptions opts;
  opts.use_triplet_training = false;
  opts.num_representatives = 1000;
  opts.embedding_dim = 32;
  opts.k = 5;
  opts.seed = 5;
  labeler::SimulatedLabeler oracle(&ds);
  core::TastiIndex index = core::TastiIndex::Build(ds, &oracle, opts);
  core::CountScorer cars(data::ObjectClass::kCar);
  const core::PropagationMode mode = core::PropagationMode::kNumeric;

  std::vector<Row> rows;
  const size_t dim = opts.embedding_dim;

  // --- repeated scorer: 16 queries of the same (scorer, epoch) ---
  {
    serve::IndexSnapshot snap =
        serve::IndexSnapshot::FromIndexAndTakeDelta(&index, 1, 0);
    const size_t kQueries = 16;
    rows.push_back({"repeated_scorer_scalar", kRecords, dim, MedianNsPerOp([&] {
                      for (size_t q = 0; q < kQueries; ++q) {
                        core::PropagationState state;
                        core::ComputeProxyState(snap.View(), cars, mode, {},
                                                &state);
                        asm volatile("" ::"r"(state.scores.data()));
                      }
                    })});
    rows.push_back({"repeated_scorer_blocked", kRecords, dim,
                    MedianNsPerOp([&] {
                      serve::ScoreCache cache;  // cold: 1 full + 15 hits
                      for (size_t q = 0; q < kQueries; ++q) {
                        auto state = cache.GetOrCompute(snap, cars, mode, {},
                                                        nullptr, nullptr);
                        asm volatile("" ::"r"(state->scores.data()));
                      }
                    })});
  }

  // --- crack then re-query: advance one epoch vs recompute from scratch ---
  {
    // Parent epoch state for the warm scorer.
    index.TakeDelta();
    core::PropagationState parent;
    core::ComputeProxyState(index.View(), cars, mode, {}, &parent);

    // Crack 32 records (a typical per-query annotation batch).
    std::vector<size_t> records;
    std::vector<data::LabelerOutput> labels;
    for (size_t r = 0; r < ds.size() && records.size() < 32; ++r) {
      if (!index.IsRepresentative(r)) {
        records.push_back(r);
        labels.push_back(ds.ground_truth[r]);
      }
    }
    index.CrackFromLabels(records, labels);
    serve::IndexSnapshot snap =
        serve::IndexSnapshot::FromIndexAndTakeDelta(&index, 2, 1);
    if (snap.delta_full) {
      std::fprintf(stderr, "crack unexpectedly produced a full delta\n");
      return 1;
    }
    eval::Diag("crack delta: %zu dirty rows of %zu records",
               snap.dirty_rows.size(), snap.num_records);

    rows.push_back({"crack_requery_scalar", kRecords, dim, MedianNsPerOp([&] {
                      core::PropagationState state;
                      core::ComputeProxyState(snap.View(), cars, mode, {},
                                              &state);
                      asm volatile("" ::"r"(state.scores.data()));
                    })});
    rows.push_back({"crack_requery_blocked", kRecords, dim, MedianNsPerOp([&] {
                      core::PropagationState state = parent;
                      core::UpdateProxyState(snap.View(), cars,
                                             snap.dirty_rows, snap.dirty_reps,
                                             &state);
                      asm volatile("" ::"r"(state.scores.data()));
                    })});
  }

  FILE* out = std::fopen(out_path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path);
    return 1;
  }
  std::fprintf(out, "[\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    std::fprintf(out,
                 "  {\"kernel\": \"%s\", \"n\": %zu, \"d\": %zu, "
                 "\"ns_per_op\": %.1f}%s\n",
                 rows[i].kernel.c_str(), rows[i].n, rows[i].d,
                 rows[i].ns_per_op, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "]\n");
  std::fclose(out);

  for (size_t i = 0; i + 1 < rows.size(); i += 2) {
    eval::Diag("%-24s %14.0f ns/op", rows[i].kernel.c_str(),
               rows[i].ns_per_op);
    eval::Diag("%-24s %14.0f ns/op  (%.2fx)", rows[i + 1].kernel.c_str(),
               rows[i + 1].ns_per_op,
               rows[i].ns_per_op / rows[i + 1].ns_per_op);
  }
  eval::Diag("wrote %s", out_path);
  return 0;
}
