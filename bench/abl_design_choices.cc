// Ablations for this implementation's own design choices (DESIGN.md §5),
// beyond the paper's factor analysis: propagation neighbor count and
// weight power, the random mixture in representative selection, semi-hard
// negative mining, and the best-of-k limit ranking.
//
// Metrics on night-street: proxy quality (rho^2 of the count proxy) for
// the propagation/training knobs, and labeler invocations for the limit
// ranking variants.

#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "cluster/fpf.h"
#include "cluster/topk.h"
#include "core/index.h"
#include "core/propagation.h"
#include "core/proxy.h"
#include "core/scorer.h"
#include "embed/pretrained.h"
#include "embed/triplet_trainer.h"
#include "eval/experiment.h"
#include "eval/reporting.h"
#include "labeler/labeler.h"
#include "queries/limit.h"
#include "util/stats.h"
#include "util/table.h"

using namespace tasti;

int main() {
  eval::PrintBanner("Design-choice ablations (implementation-specific knobs)");

  eval::ExperimentConfig config = eval::ExperimentConfig::FromEnv();
  eval::Workbench bench(data::DatasetId::kNightStreet, config);
  core::CountScorer count(data::ObjectClass::kCar);
  const std::vector<double> truth = core::ExactScores(bench.dataset(), count);
  const core::TastiIndex& index = bench.TastiT();
  const auto rep_scores = core::RepresentativeScores(index, count);

  // --- Propagation: neighbors x weight power ---
  {
    TablePrinter table({"propagation k", "weight power", "count rho^2"});
    for (size_t k : {1, 3, 5}) {
      for (float power : {1.0f, 2.0f, 3.0f}) {
        core::PropagationOptions opts;
        opts.k = k;
        opts.weight_power = power;
        const auto proxy = core::PropagateNumeric(index, rep_scores, opts);
        const double rho = PearsonCorrelation(proxy, truth);
        table.AddRow({FmtCount(static_cast<long long>(k)), Fmt(power, 0),
                      Fmt(rho * rho, 4)});
      }
    }
    eval::PrintTable(table);
  }

  // --- Limit ranking: best-of-k vs nearest-only ---
  {
    core::AtLeastCountScorer busy(data::ObjectClass::kCar, 6);
    const auto busy_reps = core::RepresentativeScores(index, busy);
    TablePrinter table({"limit ranking", "labeler calls (10 matches)"});
    for (bool best_of_k : {true, false}) {
      const auto ranking = core::PropagateLimit(index, busy_reps, best_of_k);
      auto oracle = bench.MakeOracle();
      queries::LimitOptions opts;
      opts.want = 10;
      const size_t calls =
          queries::LimitQuery(ranking, oracle.get(), busy, opts)
              .labeler_invocations;
      table.AddRow({best_of_k ? "best-of-k (default)" : "nearest-only (paper)",
                    FmtCount(static_cast<long long>(calls))});
    }
    eval::PrintTable(table);
  }

  // --- Representative selection: random mixture fraction ---
  {
    TablePrinter table({"random mix", "count rho^2", "limit calls"});
    core::AtLeastCountScorer busy(data::ObjectClass::kCar, 6);
    for (double mix : {0.0, 0.1, 0.3, 1.0}) {
      core::IndexOptions opts = bench.BaseIndexOptions();
      opts.random_rep_fraction = mix;
      if (mix >= 1.0) opts.rep_selection = core::RepSelectionPolicy::kRandom;
      labeler::SimulatedLabeler oracle(&bench.dataset());
      labeler::CachingLabeler cache(&oracle);
      core::TastiIndex variant =
          core::TastiIndex::Build(bench.dataset(), &cache, opts);
      const auto proxy = core::ComputeProxyScores(variant, count);
      const double rho = PearsonCorrelation(proxy, truth);
      const auto ranking =
          core::ComputeProxyScores(variant, busy, core::PropagationMode::kLimit);
      auto query_oracle = bench.MakeOracle();
      queries::LimitOptions limit_opts;
      limit_opts.want = 10;
      const size_t calls =
          queries::LimitQuery(ranking, query_oracle.get(), busy, limit_opts)
              .labeler_invocations;
      table.AddRow({mix >= 1.0 ? "1.0 (pure random)" : Fmt(mix, 1),
                    Fmt(rho * rho, 4), FmtCount(static_cast<long long>(calls))});
    }
    eval::PrintTable(table);
  }

  // --- Triplet training: semi-hard mining on/off ---
  {
    TablePrinter table({"negative mining", "count rho^2", "final loss"});
    for (size_t candidates : {size_t{1}, size_t{4}}) {
      embed::TripletTrainOptions opts;
      opts.num_training_records = config.video_train;
      opts.embedding_dim = config.embedding_dim;
      opts.epochs = config.epochs;
      opts.negative_candidates = candidates;
      opts.seed = 295;
      embed::PretrainedEmbedder pretrained(bench.dataset().feature_dim(),
                                           config.embedding_dim, 7);
      labeler::SimulatedLabeler oracle(&bench.dataset());
      embed::TripletTrainResult trained = embed::TrainTripletEmbedder(
          bench.dataset().features, pretrained, &oracle,
          bench.dataset().closeness, opts);
      // Evaluate via a fresh index built on this embedding through the
      // same rep-selection path: approximate by correlating a k-NN proxy
      // over FPF reps in the trained space.
      core::IndexOptions index_opts = bench.BaseIndexOptions();
      index_opts.epochs = 0;  // unused below
      // Quick evaluation: embed, pick reps by FPF, propagate counts.
      const nn::Matrix embeddings =
          trained.embedder->Embed(bench.dataset().features);
      Rng rng(9);
      const auto reps = cluster::MixedFpfRandomSelection(
          embeddings, index_opts.num_representatives,
          index_opts.random_rep_fraction, &rng);
      const nn::Matrix rep_embeddings = embeddings.GatherRows(reps);
      const auto topk = cluster::ComputeTopK(embeddings, rep_embeddings, 5);
      std::vector<double> proxy(bench.dataset().size(), 0.0);
      for (size_t i = 0; i < proxy.size(); ++i) {
        double weight_sum = 0.0, score_sum = 0.0;
        for (size_t j = 0; j < topk.k; ++j) {
          const double w = 1.0 / std::pow(topk.Dist(i, j) + 1e-6, 2.0);
          weight_sum += w;
          score_sum +=
              w * count.Score(bench.dataset().ground_truth[reps[topk.RepId(i, j)]]);
        }
        proxy[i] = score_sum / weight_sum;
      }
      const double rho = PearsonCorrelation(proxy, truth);
      table.AddRow({candidates > 1 ? "semi-hard (default)" : "uniform",
                    Fmt(rho * rho, 4), Fmt(trained.final_loss, 4)});
    }
    eval::PrintTable(table);
  }

  eval::PrintTakeaway(
      "defaults (k=5, power=2, best-of-k ranking, 10% random mix, semi-hard "
      "mining) are at or near the best cell of each sweep");
  return 0;
}
