// Figure 9: factor analysis on night-street — optimizations are added in
// sequence (none -> +triplet -> +FPF mining -> +FPF clustering) and
// aggregation / limit query costs are measured at each step.
//
// Paper result: every optimization helps aggregation; for limit queries,
// FPF mining and clustering are required before triplet training pays off
// (rare events must be represented).

#include <cstdio>

#include "ablation_common.h"
#include "eval/reporting.h"
#include "util/table.h"

using namespace tasti;

int main() {
  eval::PrintBanner(
      "Figure 9: factor analysis, night-street (optimizations added in "
      "sequence; labeler invocations, lower is better)");
  eval::PrintPaperReference(
      "agg: each step helps; limit: FPF mining + clustering are required "
      "for triplet training to help");

  eval::ExperimentConfig config = eval::ExperimentConfig::FromEnv();
  eval::Workbench bench(data::DatasetId::kNightStreet, config);

  const bench::AblationConfig steps[] = {
      {"None", false, false, false},
      {"+ Triplet", true, false, false},
      {"+ FPF train", true, true, false},
      {"+ FPF cluster (all)", true, true, true},
  };

  TablePrinter table({"configuration", "aggregation calls", "limit calls"});
  for (const auto& step : steps) {
    const bench::AblationResult result = bench::RunAblation(&bench, step);
    table.AddRow({step.label,
                  FmtCount(static_cast<long long>(result.agg_invocations)),
                  FmtCount(static_cast<long long>(result.limit_invocations))});
  }
  eval::PrintTable(table);
  eval::PrintTakeaway(
      "the full configuration is the cheapest for both query types");
  return 0;
}
