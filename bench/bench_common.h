#ifndef TASTI_BENCH_BENCH_COMMON_H_
#define TASTI_BENCH_BENCH_COMMON_H_

/// \file bench_common.h
/// Helpers shared by the figure/table benches: trial averaging and the
/// per-dataset aggregation error targets used throughout.
///
/// Absolute error targets from the paper (0.01 on ~1M-frame videos) do not
/// transfer to 20k-record simulations — they would force exhaustive
/// labeling — so each bench uses a target in the same *relative* regime:
/// small enough that sampling dominates, large enough that every method
/// converges before exhausting the dataset.

#include <functional>
#include <vector>

#include "data/dataset.h"
#include "eval/experiment.h"
#include "queries/aggregation.h"
#include "util/stats.h"

namespace tasti::bench {

/// Aggregation error target for a dataset's default statistic.
inline double AggErrorTargetFor(data::DatasetId id) {
  switch (id) {
    case data::DatasetId::kWikiSql:
      return 0.06;  // predicates/statement, mean ~1.7
    case data::DatasetId::kCommonVoice:
      return 0.04;  // male fraction, mean ~0.7
    default:
      return 0.07;  // objects/frame, mean ~0.5-1
  }
}

/// Number of trials each randomized query is averaged over.
inline constexpr int kTrials = 5;

/// Runs `trial(seed)` kTrials times and returns the mean of the returned
/// metric.
inline double MeanOverTrials(const std::function<double(uint64_t)>& trial,
                             uint64_t base_seed = 1000) {
  RunningStats stats;
  for (int t = 0; t < kTrials; ++t) {
    stats.Add(trial(base_seed + static_cast<uint64_t>(t) * 17));
  }
  return stats.mean();
}

/// Mean labeler invocations of EBS aggregation with the given proxies.
inline double MeanAggInvocations(eval::Workbench* bench,
                                 const std::vector<double>& proxy,
                                 const core::Scorer& scorer,
                                 double error_target, uint64_t base_seed) {
  return MeanOverTrials(
      [&](uint64_t seed) {
        auto oracle = bench->MakeOracle();
        queries::AggregationOptions opts;
        opts.error_target = error_target;
        opts.seed = seed;
        return static_cast<double>(
            queries::EstimateMean(proxy, oracle.get(), scorer, opts)
                .labeler_invocations);
      },
      base_seed);
}

}  // namespace tasti::bench

#endif  // TASTI_BENCH_BENCH_COMMON_H_
