// Figure 4: target labeler invocations for approximate aggregation with
// statistical guarantees (BlazeIt EBS), across all six dataset panels and
// four methods.
//
// Paper result (night-street): No proxy 53.1k > Per-query 34.7k >
// TASTI-PT 25.1k > TASTI-T 21.2k; TASTI beats per-query proxies by up to
// 2x and no-proxy by up to 3x on every panel. All methods meet the error
// target.

#include <cstdio>
#include <memory>

#include "bench_common.h"
#include "baselines/uniform.h"
#include "core/proxy.h"
#include "eval/experiment.h"
#include "eval/reporting.h"
#include "util/stats.h"
#include "util/table.h"

using namespace tasti;

int main() {
  eval::PrintBanner(
      "Figure 4: approximate aggregation, labeler invocations (lower is better)");
  eval::PrintPaperReference(
      "night-street: No proxy 53.1k | Per-query 34.7k | TASTI-PT 25.1k | "
      "TASTI-T 21.2k (similar ordering on all 6 panels)");

  eval::ExperimentConfig config = eval::ExperimentConfig::FromEnv();
  TablePrinter table({"panel", "No proxy", "Per-query proxy", "TASTI-PT",
                      "TASTI-T", "rho^2 (PQ)", "rho^2 (T)"});

  for (data::DatasetId id : data::AllDatasetIds()) {
    eval::Workbench bench(id, config);
    const double target = bench::AggErrorTargetFor(id);
    for (const eval::QuerySpec& spec : eval::DefaultQuerySpecs(id)) {
      const core::Scorer& scorer = *spec.aggregation;
      const std::vector<double> truth =
          core::ExactScores(bench.dataset(), scorer);

      const double no_proxy = bench::MeanOverTrials([&](uint64_t seed) {
        auto oracle = bench.MakeOracle();
        queries::AggregationOptions opts;
        opts.error_target = target;
        opts.seed = seed;
        return static_cast<double>(
            baselines::UniformAggregate(oracle.get(), scorer, opts)
                .labeler_invocations);
      });

      const auto per_query = bench.PerQueryProxy(scorer);
      const double pq = bench::MeanAggInvocations(&bench, per_query.scores,
                                                  scorer, target, 11);
      const auto pt_scores = bench.TastiScores(scorer, /*trained=*/false);
      const double pt =
          bench::MeanAggInvocations(&bench, pt_scores, scorer, target, 12);
      const auto t_scores = bench.TastiScores(scorer, /*trained=*/true);
      const double t =
          bench::MeanAggInvocations(&bench, t_scores, scorer, target, 13);

      const double rho_pq = PearsonCorrelation(per_query.scores, truth);
      const double rho_t = PearsonCorrelation(t_scores, truth);
      table.AddRow({spec.label, FmtCount(static_cast<long long>(no_proxy)),
                    FmtCount(static_cast<long long>(pq)),
                    FmtCount(static_cast<long long>(pt)),
                    FmtCount(static_cast<long long>(t)),
                    Fmt(rho_pq * rho_pq, 2), Fmt(rho_t * rho_t, 2)});
    }
  }
  eval::PrintTable(table);
  eval::PrintTakeaway(
      "TASTI-T needs the fewest labeler invocations on every panel; better "
      "proxy correlation (rho^2) explains the control-variate speedup, as "
      "in the paper (0.91 vs 0.55)");
  return 0;
}
