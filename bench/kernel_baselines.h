#ifndef TASTI_BENCH_KERNEL_BASELINES_H_
#define TASTI_BENCH_KERNEL_BASELINES_H_

/// \file kernel_baselines.h
/// Scalar reference implementations of the distance kernels, frozen at
/// their pre-blocking form. The microbenchmarks and tools/bench_to_json
/// time these against the batched kernels in nn/kernels.h to track the
/// speedup across PRs; the kernel tests use them as ground truth.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "cluster/topk.h"
#include "nn/matrix.h"

/// The baselines must keep producing the *seed's* machine code: the repo
/// shipped with -O2, where GCC declines to vectorize these runtime-trip
/// reduction loops, and this is the codegen the "scalar" rows represent.
/// The library now builds at -O3 (which auto-vectorizes nn::Distance), so
/// the baselines carry their own distance loop pinned to -O2 — otherwise
/// the before/after comparison silently measures -O3 scalar code instead
/// of the pre-kernel implementation. noinline matters as much as the -O2
/// pin: inlining into an -O3 caller re-applies the caller's flags (and the
/// seed's nn::Distance was an out-of-line library call anyway).
#if defined(__GNUC__) && !defined(__clang__)
#define TASTI_BENCH_SEED_CODEGEN __attribute__((noinline, optimize("O2")))
#else
#define TASTI_BENCH_SEED_CODEGEN
#endif

namespace tasti::bench {

/// Pre-kernel Euclidean distance: the loop nn::Distance compiled to at
/// the seed's -O2 (single accumulator, not vectorized).
TASTI_BENCH_SEED_CODEGEN inline float ScalarDistance(const nn::Matrix& a,
                                                     size_t i,
                                                     const nn::Matrix& b,
                                                     size_t j) {
  const float* x = a.Row(i);
  const float* y = b.Row(j);
  float acc = 0.0f;
  for (size_t p = 0; p < a.cols(); ++p) {
    const float diff = x[p] - y[p];
    acc += diff * diff;
  }
  return std::sqrt(acc);
}

/// Pre-kernel ComputeTopK: one scalar distance per (record, rep) pair.
inline cluster::TopKDistances ComputeTopKScalar(const nn::Matrix& points,
                                                const nn::Matrix& reps,
                                                size_t k) {
  const size_t n = points.rows();
  const size_t r = reps.rows();
  k = std::min(k, r);
  cluster::TopKDistances topk;
  topk.k = k;
  topk.num_records = n;
  topk.rep_ids.assign(n * k, 0);
  topk.distances.assign(n * k, std::numeric_limits<float>::max());
  std::vector<float> best_d(k);
  std::vector<uint32_t> best_id(k);
  for (size_t i = 0; i < n; ++i) {
    size_t filled = 0;
    for (size_t j = 0; j < r; ++j) {
      const float d = ScalarDistance(points, i, reps, j);
      if (filled < k || d < best_d[filled - 1]) {
        size_t pos = filled < k ? filled : k - 1;
        while (pos > 0 && best_d[pos - 1] > d) {
          best_d[pos] = best_d[pos - 1];
          best_id[pos] = best_id[pos - 1];
          --pos;
        }
        best_d[pos] = d;
        best_id[pos] = static_cast<uint32_t>(j);
        if (filled < k) ++filled;
      }
    }
    for (size_t j = 0; j < k; ++j) {
      topk.distances[i * k + j] = best_d[j];
      topk.rep_ids[i * k + j] = best_id[j];
    }
  }
  return topk;
}

/// Pre-kernel FPF relax pass: one scalar distance per point against the
/// new center, plus the min-distance update and running argmax.
inline size_t FpfRelaxScalar(const nn::Matrix& points, size_t center,
                             std::vector<float>* min_distance) {
  float best = -1.0f;
  size_t arg = 0;
  for (size_t i = 0; i < points.rows(); ++i) {
    const float d = ScalarDistance(points, i, points, center);
    if (d < (*min_distance)[i]) (*min_distance)[i] = d;
    if ((*min_distance)[i] > best) {
      best = (*min_distance)[i];
      arg = i;
    }
  }
  return arg;
}

/// Pre-kernel GemmBT: row-by-row dot products against strided B rows.
TASTI_BENCH_SEED_CODEGEN inline void GemmBTScalar(const nn::Matrix& a,
                                                  const nn::Matrix& b,
                                                  nn::Matrix* c) {
  const size_t m = a.rows(), k = a.cols(), n = b.rows();
  if (c->rows() != m || c->cols() != n) *c = nn::Matrix(m, n);
  for (size_t i = 0; i < m; ++i) {
    const float* arow = a.Row(i);
    float* crow = c->Row(i);
    for (size_t j = 0; j < n; ++j) {
      const float* brow = b.Row(j);
      float acc = 0.0f;
      for (size_t p = 0; p < k; ++p) acc += arow[p] * brow[p];
      crow[j] = acc;
    }
  }
}

}  // namespace tasti::bench

#endif  // TASTI_BENCH_KERNEL_BASELINES_H_
