// Figure 10: lesion study on night-street — starting from the full
// configuration, each optimization is removed individually.
//
// Paper result: removing triplet training hurts aggregation the most;
// removing FPF clustering is catastrophic for limit queries.

#include <cstdio>

#include "ablation_common.h"
#include "eval/reporting.h"
#include "util/table.h"

using namespace tasti;

int main() {
  eval::PrintBanner(
      "Figure 10: lesion study, night-street (optimizations removed "
      "individually; labeler invocations, lower is better)");
  eval::PrintPaperReference(
      "removing triplet training hurts aggregation; removing FPF "
      "clustering is critical for limit queries");

  eval::ExperimentConfig config = eval::ExperimentConfig::FromEnv();
  eval::Workbench bench(data::DatasetId::kNightStreet, config);

  const bench::AblationConfig lesions[] = {
      {"All", true, true, true},
      {"- Triplet", false, true, true},
      {"- FPF train", true, false, true},
      {"- FPF cluster", true, true, false},
  };

  TablePrinter table({"configuration", "aggregation calls", "limit calls"});
  for (const auto& lesion : lesions) {
    const bench::AblationResult result = bench::RunAblation(&bench, lesion);
    table.AddRow({lesion.label,
                  FmtCount(static_cast<long long>(result.agg_invocations)),
                  FmtCount(static_cast<long long>(result.limit_invocations))});
  }
  eval::PrintTable(table);
  eval::PrintTakeaway("every removed optimization costs performance somewhere");
  return 0;
}
